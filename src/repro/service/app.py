"""The query service: planner + caches + session pool + batch executor.

:class:`QueryService` is the object the HTTP front end (and any
embedding application) talks to.  It owns everything shared between
requests:

* one :class:`~repro.service.epoch.GraphEpoch` — an immutable
  ``(frozen graph, index, epoch_id)`` bundle behind a single atomic
  reference.  The graph is *never mutated in place*, which is what
  makes lock-free concurrent answering sound; live updates
  (:meth:`QueryService.apply_updates`, ``POST /edges``) instead copy
  the graph, repair the index per touched region, re-freeze and publish
  a whole new epoch, while in-flight queries finish on the old one.  At
  construction the graph is **frozen** into a read-optimized CSR
  snapshot (:class:`~repro.graph.csr.FrozenGraph`, ``freeze=False``
  opts out): every search and SPARQL evaluation then iterates
  contiguous label-slices behind per-vertex label-mask pre-tests
  instead of walking per-vertex dicts;
* a :class:`QueryPlanner` with a process-wide
  :class:`ConstraintCache`;
* a :class:`ResultCache` keyed on canonical queries, and a
  :class:`CandidateCache` memoising ``V(S, G)`` per canonical
  constraint so repeated constraints skip the SPARQL engine;
* a lazily populated pool of per-algorithm :class:`LSCRSession`\\ s, all
  sharing the graph, index and constraint cache (per-query search state
  lives inside each ``answer`` call, so one session per algorithm
  serves every thread; the only shared mutable piece is the shuffle
  rng, whose interleaving affects traversal-order telemetry, never
  answers);
* a :class:`BatchExecutor` for ``POST /batch`` fan-out and a
  :class:`ServiceStats` ledger for ``GET /stats``.

Two API levels are exposed.  :meth:`query` / :meth:`query_batch` take
Python values and return ``(QueryResult, meta)`` pairs;
:meth:`handle_query` / :meth:`handle_batch` / :meth:`health` /
:meth:`stats_snapshot` speak JSON-ready dicts and raise
:class:`~repro.exceptions.BadRequestError` for anything a client got
wrong, which the HTTP layer maps to structured 4xx responses.
"""

from __future__ import annotations

import json
from collections.abc import Hashable, Iterable
from contextlib import nullcontext
from dataclasses import asdict
from pathlib import Path
from threading import Lock
from time import perf_counter
from typing import Any

from repro._version import __version__
from repro.approx import (
    APPROX_ALGORITHM,
    MODES,
    SHORT_CIRCUIT_ALGORITHMS,
    ApproxRouter,
    build_bounds,
)
from repro.approx.bounds import BoundsIndex
from repro.constraints.label_constraint import LabelConstraint
from repro.constraints.substructure import SubstructureConstraint
from repro.core.result import QueryResult
from repro.exceptions import (
    BadRequestError,
    ConstraintError,
    OverloadedError,
    ReadOnlyServiceError,
    ServiceConfigError,
    SparqlError,
    WalReplayError,
)
from repro.graph.csr import FrozenGraph, base_graph, freeze_graph
from repro.graph.io import load_tsv
from repro.graph.labeled_graph import KnowledgeGraph
from repro.index.landmarks import NO_REGION
from repro.index.local_index import LocalIndex, build_local_index
from repro.index.storage import load_or_build_index
from repro.obs.flight import (
    DEFAULT_SLOW_LOG_SIZE,
    DEFAULT_SLOW_MS,
    FlightRecorder,
)
from repro.obs.trace import (
    Trace,
    TraceSampler,
    annotate,
    current_span,
    current_trace,
    span,
    use_trace,
)
from repro.resilience.admission import AdmissionController
from repro.resilience.deadline import (
    check_deadline,
    current_deadline,
    use_deadline,
)
from repro.service.cache import CandidateCache, ConstraintCache, ResultCache
from repro.service.epoch import (
    GraphEpoch,
    normalize_edge_updates,
    validate_edge_updates,
)
from repro.service.executor import BatchExecutor
from repro.service.planner import QueryPlan, QueryPlanner
from repro.service.stats import ServiceStats
from repro.utils.persist import atomic_write_json

__all__ = ["QueryService", "DEFAULT_MAX_BATCH", "DEFAULT_REBUILD_REGION_FRACTION"]

#: Refuse larger ``POST /batch`` bodies (memory guard, not a tuning knob).
DEFAULT_MAX_BATCH = 4096

#: When an update batch touches more than this fraction of the index's
#: regions, per-region repair stops paying for itself and the whole
#: index is rebuilt instead (with the same landmarks, so the partition
#: stays stable across the swap).
DEFAULT_REBUILD_REGION_FRACTION = 0.5

_SPEC_FIELDS = ("source", "target", "labels", "constraint")

#: On-disk format of :meth:`QueryService.save_snapshot` files.  Version
#: 2 added the epoch id and content fingerprint to the graph identity;
#: version-1 files carry neither and are refused rather than trusted.
_SNAPSHOT_VERSION = 2


class QueryService:
    """A shared, thread-safe LSCR answering engine for one graph."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        index: LocalIndex | None = None,
        *,
        algorithm: str | None = None,
        cache_size: int = 1024,
        cache_ttl: float | None = None,
        max_workers: int | None = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        seed: int = 0,
        freeze: bool = True,
        trace_sample: float = 0.0,
        slow_ms: float = DEFAULT_SLOW_MS,
        slow_log_size: int = DEFAULT_SLOW_LOG_SIZE,
        max_concurrent: int | None = None,
        max_queue: int = 0,
        approx: bool = True,
        approx_default: bool = False,
        approx_recheck: float = 0.05,
    ) -> None:
        if max_batch < 1:
            raise ServiceConfigError(f"max_batch must be >= 1, got {max_batch}")
        self.seed = seed
        self.max_batch = max_batch
        if approx_default and not approx:
            raise ServiceConfigError(
                "approx_default requires the approx tier to be enabled"
            )
        #: The bounded-answer tier (``repro.approx``): sound
        #: short-circuits ahead of the exact evaluators plus the opt-in
        #: ``mode=approximate``.  None disables routing entirely and the
        #: service behaves exactly as before the tier existed.
        self.approx: ApproxRouter | None = None
        if approx:
            try:
                self.approx = ApproxRouter(
                    approx_default=approx_default,
                    recheck_rate=approx_recheck,
                    # Follows the result cache's knob: cache_size=0
                    # keeps the sound bounds but stores no witnesses,
                    # so the uncached service stays genuinely uncached.
                    witness_cache_size=cache_size,
                    seed=seed,
                )
            except ValueError as error:
                raise ServiceConfigError(str(error)) from error
        #: Admission control for the query endpoints (``--max-concurrent``
        #: / ``--max-queue``); None — the default — admits everything and
        #: costs nothing on the request path.
        self.admission: AdmissionController | None = None
        if max_concurrent is not None:
            try:
                self.admission = AdmissionController(
                    max_concurrent, max_queue=max_queue
                )
            except ValueError as error:
                raise ServiceConfigError(str(error)) from error
        try:
            #: Server-side trace sampling: the fraction of un-asked-for
            #: requests that get a (flight-recorder-only) trace.
            self._sampler = TraceSampler(trace_sample, seed=seed)
            #: The slow-query flight recorder.  Owned by the *service*,
            #: not the epoch, so recorded entries survive update swaps —
            #: that durability is what makes a post-update regression
            #: diagnosable from its recorded pre/post traces.
            self.flight = FlightRecorder(
                threshold_ms=slow_ms, max_entries=slow_log_size
            )
        except ValueError as error:
            raise ServiceConfigError(str(error)) from error
        self.trace_sample = trace_sample
        self.constraints = ConstraintCache()
        self._forced_algorithm = algorithm
        self._freeze = freeze
        self._cache_size = cache_size
        self.results = ResultCache(max_size=cache_size, ttl_seconds=cache_ttl)
        self.executor = BatchExecutor(max_workers=max_workers, persistent=True)
        self.stats = ServiceStats()
        # Freeze once at warm start: the epoch's immutability contract
        # makes the CSR snapshot safe, and every session/planner below
        # sees the frozen graph.  Ids are shared, so an index built (or
        # loaded) against the source graph stays valid.  Everything
        # graph-bound lives in one GraphEpoch behind a single atomic
        # attribute reference — readers dereference it once per request
        # and never lock; apply_updates publishes replacements.
        frozen = freeze_graph(graph) if freeze else graph
        planner = QueryPlanner(
            frozen,
            self.constraints,
            has_index=index is not None,
            fallback_algorithm=algorithm or "uis*",
        )
        self._epoch = GraphEpoch(
            0,
            frozen,
            index,
            planner,
            # Follows the result cache's knob: cache_size=0 disables
            # V(S,G) memoisation too, so one flag yields a genuinely
            # uncached service.
            CandidateCache(max_size=cache_size),
            self.constraints,
            seed,
            bounds=self._build_bounds(frozen),
        )
        #: Serialises writers only (apply_updates); readers never take it.
        self._update_lock = Lock()
        #: Per-tenant write-ahead log (:class:`repro.wal.TenantWal`) when
        #: the service runs durable (``serve --wal``); attached *after*
        #: recovery so replay never re-appends its own records.
        self._wal: Any = None
        #: When True (``serve --follow``), ``POST /edges`` answers a
        #: structured 403; :meth:`apply_updates` itself stays callable —
        #: it is how the follower's log tailer republishes epochs.
        self.read_only = False
        #: The :class:`repro.wal.WalFollower` driving this replica, when
        #: one is; surfaced through :meth:`health` / :meth:`stats_snapshot`.
        self.replication: Any = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_files(
        cls,
        graph_path: str | Path,
        index_path: str | Path | None = None,
        *,
        landmark_count: int | None = None,
        seed: int = 0,
        freeze: bool = True,
        **kwargs: Any,
    ) -> "QueryService":
        """Warm-start a service from a TSV graph and a persisted index.

        ``index_path=None`` serves index-free (UIS*/UIS fallback).  A
        given-but-missing ``index_path`` builds the index at startup and
        persists it there, so the *next* start is warm — the service
        counterpart of ``python -m repro index``.

        The graph is frozen *before* the index is touched, so a missing
        index is built over the CSR snapshot (itself measurably faster)
        and a loaded one binds to the graph the sessions will traverse.
        """
        graph_path = Path(graph_path)
        if not graph_path.is_file():
            raise ServiceConfigError(f"graph file not found: {graph_path}")
        graph = load_tsv(graph_path, name=graph_path.stem)
        if freeze:
            graph = freeze_graph(graph)
        index = None
        if index_path is not None:
            index = load_or_build_index(
                graph, index_path, k=landmark_count, rng=seed, save_if_built=True
            )
        return cls(graph, index, seed=seed, freeze=freeze, **kwargs)

    def __repr__(self) -> str:
        return (
            f"QueryService({self.graph.name!r}, "
            f"default={self.planner.default_algorithm!r}, "
            f"index={'loaded' if self.index is not None else 'none'}, "
            f"epoch={self._epoch.epoch_id})"
        )

    # ------------------------------------------------------------------
    # epoch accessors — the graph-bound state always comes from the
    # *current* epoch, so existing call sites keep working unchanged
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> GraphEpoch:
        """The currently published serving epoch."""
        return self._epoch

    @property
    def graph(self) -> KnowledgeGraph:
        """The current epoch's (frozen) graph."""
        return self._epoch.graph

    @property
    def index(self) -> LocalIndex | None:
        """The current epoch's local index (None when serving index-free)."""
        return self._epoch.index

    @property
    def planner(self) -> QueryPlanner:
        """The current epoch's planner."""
        return self._epoch.planner

    @property
    def candidates(self) -> CandidateCache:
        """The current epoch's ``V(S, G)`` candidate cache."""
        return self._epoch.candidates

    @property
    def default_algorithm(self) -> str:
        """The algorithm requests run on when they don't name one."""
        return self._forced_algorithm or self.planner.default_algorithm

    def _build_bounds(self, graph: KnowledgeGraph) -> BoundsIndex | None:
        """The label-blind upper bound for one snapshot (None when off).

        Called at every epoch construction site — warm start, update
        publish, whole-graph replacement — so the bounds the router
        consults always describe exactly the graph the epoch serves.
        """
        if self.approx is None:
            return None
        return build_bounds(graph, seed=self.seed)

    def _resolve_mode(self, mode: str | None) -> str:
        """Validate a per-request answer mode against the tier config."""
        if self.approx is not None:
            try:
                return self.approx.resolve_mode(mode)
            except ValueError as error:
                raise BadRequestError(str(error)) from error
        if mode is None or mode == "exact":
            return "exact"
        if mode == "approximate":
            raise BadRequestError(
                "mode=approximate requires the approx tier "
                "(the service was built with approx=False)"
            )
        raise BadRequestError(f"mode must be one of {MODES}, got {mode!r}")

    def close(self) -> None:
        """Release pooled resources (the persistent batch thread pool).

        Called when a tenant is removed from a
        :class:`~repro.service.registry.TenantRegistry`.  Idempotent,
        and safe with stragglers: a request still holding this service
        keeps answering — a fresh pool is created on demand if one more
        batch arrives.
        """
        self.executor.shutdown()

    # ------------------------------------------------------------------
    # Python-level API
    # ------------------------------------------------------------------

    def query(
        self,
        source: Hashable,
        target: Hashable,
        labels: Iterable[str] | LabelConstraint,
        constraint: str | SubstructureConstraint,
        algorithm: str | None = None,
        use_cache: bool = True,
        mode: str | None = None,
        _batch: bool = False,
    ) -> tuple[QueryResult, dict]:
        """Answer one query; returns ``(result, meta)``.

        ``meta`` reports how the answer was produced: ``cached``,
        ``trivial``, the planner's ``reason``, the ``epoch`` the answer
        is valid for and — when the approx tier routed the query — the
        ``tier`` that settled it.  With ``use_cache`` off the result
        cache is neither consulted nor populated.  ``mode`` is
        ``"exact"`` or ``"approximate"`` (None follows the service
        default, normally exact).

        The epoch is read exactly once: planning, cache lookup and
        execution all bind to it, so a concurrent :meth:`apply_updates`
        publishing a new epoch mid-call never mixes graph versions —
        this query simply completes on the epoch it started on.
        """
        mode = self._resolve_mode(mode)
        if algorithm is None:
            algorithm = self._forced_algorithm
        epoch = self._epoch
        plan = epoch.planner.plan(source, target, labels, constraint, algorithm)
        return self._finish(
            plan, epoch, use_cache=use_cache, batch=_batch, mode=mode
        )

    def query_batch(
        self,
        specs: Iterable[dict],
        use_cache: bool = True,
        mode: str | None = None,
    ) -> list[tuple[QueryResult, dict]]:
        """Answer a homogeneous batch concurrently, preserving order.

        Planning runs serially first — that is where constraint parsing
        happens, so the batch is effectively grouped by constraint text
        and each distinct text is parsed once — then execution fans out
        over the :class:`BatchExecutor`.  A per-spec ``use_cache`` key
        overrides the batch-level flag for that query only.
        """
        started = perf_counter()
        mode = self._resolve_mode(mode)
        specs = list(specs)
        if len(specs) > self.max_batch:
            raise BadRequestError(
                f"batch of {len(specs)} queries exceeds the limit of "
                f"{self.max_batch}"
            )
        # One epoch for the whole batch: every member is answered
        # against the same graph version even if an update lands while
        # the batch is in flight.
        epoch = self._epoch
        with span("plan-batch", queries=len(specs)):
            plans = [
                (
                    epoch.planner.plan(
                        spec["source"],
                        spec["target"],
                        spec["labels"],
                        spec["constraint"],
                        spec.get("algorithm") or self._forced_algorithm,
                    ),
                    use_cache and spec.get("use_cache", True),
                )
                for spec in specs
            ]
        self.stats.record_batch()
        trace = current_trace()
        deadline = current_deadline()
        if trace is None and deadline is None:
            runner = lambda item: self._finish(  # noqa: E731
                item[1][0], epoch, use_cache=item[1][1], batch=True, mode=mode
            )
        else:
            # Pool threads don't inherit context variables: re-activate
            # the batch's trace *and* the request deadline in the worker
            # so every member stops at the same wall-clock budget, and
            # give each member its own "query" span under the batch root.
            def runner(item):
                position, (plan, item_cache) = item
                with use_trace(trace), use_deadline(deadline), span(
                    "query", index=position
                ):
                    return self._finish(
                        plan, epoch, use_cache=item_cache, batch=True, mode=mode
                    )

        answered = self.executor.map(runner, list(enumerate(plans)))
        self.stats.record_latency("batch", perf_counter() - started)
        return answered

    # ------------------------------------------------------------------
    # live updates (copy-on-write epoch swap)
    # ------------------------------------------------------------------

    def apply_updates(
        self,
        edges: Iterable[tuple[Hashable, ...]],
        *,
        rebuild_region_fraction: float = DEFAULT_REBUILD_REGION_FRACTION,
    ) -> dict:
        """Apply an edge update batch and publish a new serving epoch.

        Each item is ``(source, label, target)`` — an implicit addition —
        or ``(source, label, target, op)`` with ``op`` in ``{"add",
        "remove"}``.  Items apply *in order*, so an add-then-remove of
        the same edge nets to absent and the reverse to present.

        Copy-on-write end to end: the current epoch's base graph is
        deep-copied, the batch is applied to the copy (new vertices and
        labels intern as needed for additions; duplicate adds and
        missing removes are counted, not errors — removal of an unknown
        name never interns anything, so a miss leaves the graph's
        content fingerprint untouched), the index — when one is loaded —
        is cloned and repaired per touched region
        (:meth:`LocalIndex.refresh_regions`, which rebuilds each touched
        region's ``II/EIT/D`` from the *current* graph and therefore
        repairs removals and insertions alike; falling back to a full
        rebuild with the same landmarks when the batch touches more than
        ``rebuild_region_fraction`` of the regions), the copy is
        re-frozen, and a fresh :class:`GraphEpoch` replaces
        ``self._epoch`` in one atomic store.  Readers never block:
        queries in flight finish on the old epoch, later ones see the
        new one.  Writers serialise on one update lock.

        When a write-ahead log is attached (:meth:`attach_wal`) the
        batch is appended — with the new epoch id and content
        fingerprint — *after* the publish and before the ack returns, so
        an acknowledged batch is always durable; a crash between publish
        and append can only lose a batch whose ack the client never saw.

        Returns a JSON-ready summary (new epoch id, add/duplicate/
        remove/missing counts, index action).  The whole batch is
        applied or — on a validation error raised before any copying —
        none of it; failures after copying cannot corrupt serving state
        because only the copy was touched.
        """
        updates = normalize_edge_updates(edges)
        if not updates:
            raise BadRequestError("update batch must contain at least one edge")
        with self._update_lock:
            started = perf_counter()
            old = self._epoch
            # No-op batches skip the copy/repair/publish entirely — and
            # the epoch bump, which keeps "same epoch" equivalent to
            # "same content" for the snapshot identity.  A batch is a
            # no-op when every add is a duplicate and every remove a
            # miss; those two sets cannot interact in sequence (an add
            # targets a present edge, a remove an absent one), so the
            # initial-state check is sound for the whole batch.
            if all(
                old.graph.has_edge_named(source, label, target) == (op == "add")
                for source, label, target, op in updates
            ):
                duplicates = sum(1 for *_, op in updates if op == "add")
                missing = len(updates) - duplicates
                self.stats.record_update(
                    edges_added=0,
                    edges_duplicate=duplicates,
                    vertices_added=0,
                    edges_removed=0,
                    edges_missing=missing,
                )
                elapsed = perf_counter() - started
                self.stats.record_latency("updates", elapsed)
                return {
                    "epoch": old.epoch_id,
                    "edges_added": 0,
                    "edges_duplicate": duplicates,
                    "edges_removed": 0,
                    "edges_missing": missing,
                    "vertices_added": 0,
                    "index": "unchanged",
                    "regions_refreshed": 0,
                    "seconds": elapsed,
                }
            with span("copy"):
                base = base_graph(old.graph).copy()
            vertices_before = base.num_vertices
            added: list[tuple[int, int, int]] = []
            removed_sources: list[int] = []
            duplicates = 0
            missing = 0
            with span("apply", edges=len(updates)) as apply_span:
                for source, label, target, op in updates:
                    if op == "add":
                        s_id = base.add_vertex(source)
                        t_id = base.add_vertex(target)
                        label_id = base.labels.intern(label)
                        if base.add_edge_ids(s_id, label_id, t_id):
                            added.append((s_id, label_id, t_id))
                        else:
                            duplicates += 1
                    elif base.remove_edge(source, label, target):
                        # Name-level removal: a hit implies all three
                        # names were interned, so vid() cannot miss.
                        removed_sources.append(base.vid(source))
                    else:
                        missing += 1
                vertices_added = base.num_vertices - vertices_before
                apply_span.set(
                    added=len(added),
                    duplicates=duplicates,
                    removed=len(removed_sources),
                    missing=missing,
                    vertices_added=vertices_added,
                )
            with span("freeze"):
                new_graph = freeze_graph(base) if self._freeze else base
            new_index: LocalIndex | None = None
            index_action = "none"
            regions_refreshed = 0
            if old.index is not None:
                with span("index-repair") as repair_span:
                    new_index = old.index.clone_for(new_graph)
                    # region_of would IndexError on a just-interned vertex
                    # id until the region list is extended to the new |V|.
                    new_index.sync_vertices()
                    # Both mutation kinds dirty exactly the region of the
                    # edge's source: II covers in-region paths and EIT
                    # edges leaving the region, and both are indexed under
                    # F(source) — so a removed edge's stale entries live
                    # in region_of(source), same as an inserted edge's
                    # missing ones.
                    touched = {new_index.region_of(s_id) for s_id, _, _ in added}
                    touched.update(
                        new_index.region_of(s_id) for s_id in removed_sources
                    )
                    touched.discard(NO_REGION)
                    landmarks = new_index.partition.landmarks
                    if touched and len(touched) > rebuild_region_fraction * len(
                        landmarks
                    ):
                        new_index = build_local_index(
                            new_graph, landmarks=list(landmarks)
                        )
                        index_action = "rebuilt"
                        regions_refreshed = len(landmarks)
                    else:
                        regions_refreshed = new_index.refresh_regions(touched)
                        index_action = (
                            "refreshed" if regions_refreshed else "unchanged"
                        )
                    repair_span.set(
                        action=index_action, regions=regions_refreshed
                    )
            with span("bounds") as bounds_span:
                # The bounds index describes one snapshot; rebuild it for
                # the new graph so router short-circuits stay sound the
                # instant the epoch publishes.
                new_bounds = self._build_bounds(new_graph)
                bounds_span.set(
                    enabled=new_bounds is not None,
                    components=(
                        new_bounds.component_count if new_bounds else 0
                    ),
                )
            with span("publish") as publish_span:
                new_epoch = GraphEpoch(
                    old.epoch_id + 1,
                    new_graph,
                    new_index,
                    old.planner.rebind(new_graph, has_index=new_index is not None),
                    CandidateCache(max_size=self._cache_size),
                    self.constraints,
                    self.seed,
                    bounds=new_bounds,
                )
                # The publish: a single attribute store is atomic under
                # the GIL — this is the only line readers ever observe
                # changing.
                self._epoch = new_epoch
                # Old-epoch result-cache entries are unreachable by new
                # queries (the epoch id is part of the key); reclaim them
                # now instead of waiting for LRU pressure.
                current = new_epoch.epoch_id
                purged = self.results.purge(
                    lambda key: isinstance(key, tuple) and key[0] != current
                )
                publish_span.set(epoch=current, cache_purged=purged)
            if self._wal is not None:
                # Append-after-publish: the record carries the epoch the
                # batch *produced*, and fsyncs before the ack leaves.
                with span("wal-append") as wal_span:
                    self._wal.append(
                        updates,
                        epoch=new_epoch.epoch_id,
                        fingerprint=new_epoch.fingerprint,
                        graph=new_epoch.graph,
                    )
                    wal_span.set(epoch=new_epoch.epoch_id)
            elapsed = perf_counter() - started
            self.stats.record_update(
                edges_added=len(added),
                edges_duplicate=duplicates,
                vertices_added=vertices_added,
                edges_removed=len(removed_sources),
                edges_missing=missing,
            )
            self.stats.record_latency("updates", elapsed)
        return {
            "epoch": new_epoch.epoch_id,
            "edges_added": len(added),
            "edges_duplicate": duplicates,
            "edges_removed": len(removed_sources),
            "edges_missing": missing,
            "vertices_added": vertices_added,
            "index": index_action,
            "regions_refreshed": regions_refreshed,
            "seconds": elapsed,
        }

    # ------------------------------------------------------------------
    # durability + replication hooks (repro.wal)
    # ------------------------------------------------------------------

    def attach_wal(self, wal: Any) -> None:
        """Attach a per-tenant write-ahead log to this service.

        Every subsequent :meth:`apply_updates` that publishes a new
        epoch appends its batch to ``wal`` before acknowledging.  Called
        by recovery (:func:`repro.wal.recover_service`) *after* replay,
        so replayed records are never re-appended.
        """
        self._wal = wal

    def reset_epoch(
        self, epoch_id: int, *, expected_fingerprint: str | None = None
    ) -> None:
        """Renumber the current epoch to ``epoch_id`` without mutation.

        WAL recovery uses this to restore the epoch *counter* alongside
        the content: a service rebuilt from a compaction snapshot starts
        at epoch 0 even though its graph is the log's epoch-N state.
        The graph, index, planner and caches are reused as-is; only the
        id (and with it the result-cache namespace) changes.  With
        ``expected_fingerprint`` the current graph's content digest must
        match, or :class:`~repro.exceptions.WalReplayError` is raised —
        catching a base graph that is not the one the log was written
        against *before* replay applies anything on top of it.
        """
        with self._update_lock:
            old = self._epoch
            if (
                expected_fingerprint is not None
                and old.fingerprint != expected_fingerprint
            ):
                raise WalReplayError(
                    f"cannot adopt epoch {epoch_id}: current graph "
                    f"fingerprint {old.fingerprint} != expected "
                    f"{expected_fingerprint}"
                )
            if epoch_id == old.epoch_id:
                return
            new_epoch = GraphEpoch(
                epoch_id,
                old.graph,
                old.index,
                old.planner,
                old.candidates,
                self.constraints,
                self.seed,
                # Same graph, same bounds: renumbering never re-derives.
                bounds=old.bounds,
            )
            self._epoch = new_epoch
            self.results.purge(
                lambda key: isinstance(key, tuple) and key[0] != epoch_id
            )

    def replace_graph(
        self,
        graph: KnowledgeGraph,
        epoch_id: int,
        *,
        expected_fingerprint: str | None = None,
    ) -> None:
        """Swap in a whole new graph as epoch ``epoch_id``.

        The follower's resync path: when the leader compacted past the
        records a lagging replica still needed, the replica reloads the
        compaction snapshot wholesale instead of replaying a gap it no
        longer can.  The graph is frozen, the index — when this service
        serves indexed — is rebuilt over it with the *same landmarks*
        (snapshot graphs preserve vertex ids, so the partition stays
        comparable), and a fresh epoch is published exactly like an
        update swap.  ``expected_fingerprint`` mismatches raise
        :class:`~repro.exceptions.WalReplayError` before publication.
        """
        with self._update_lock:
            old = self._epoch
            fingerprint = graph.content_fingerprint()
            if (
                expected_fingerprint is not None
                and fingerprint != expected_fingerprint
            ):
                raise WalReplayError(
                    f"cannot adopt epoch {epoch_id}: replacement graph "
                    f"fingerprint {fingerprint} != expected "
                    f"{expected_fingerprint}"
                )
            frozen = freeze_graph(graph) if self._freeze else graph
            new_index: LocalIndex | None = None
            if old.index is not None:
                new_index = build_local_index(
                    frozen, landmarks=list(old.index.partition.landmarks)
                )
            new_epoch = GraphEpoch(
                epoch_id,
                frozen,
                new_index,
                old.planner.rebind(frozen, has_index=new_index is not None),
                CandidateCache(max_size=self._cache_size),
                self.constraints,
                self.seed,
                bounds=self._build_bounds(frozen),
            )
            self._epoch = new_epoch
            self.results.purge(
                lambda key: isinstance(key, tuple) and key[0] != epoch_id
            )

    # ------------------------------------------------------------------

    def _finish(
        self,
        plan: QueryPlan,
        epoch: GraphEpoch,
        *,
        use_cache: bool,
        batch: bool,
        mode: str = "exact",
    ) -> tuple[QueryResult, dict]:
        """Execute (or short-circuit) one plan and record telemetry.

        The result cache is namespaced by the epoch the plan was made
        against: entries live under ``(epoch_id, canonical key)``, so an
        old-epoch query completing after a swap can only write (and a
        new-epoch query can only read) entries for its own graph
        version — the stale-answer race the old shared keys had.
        """
        started = perf_counter()
        meta = {
            "cached": False,
            "trivial": False,
            "reason": plan.reason,
            "epoch": epoch.epoch_id,
            "source": "evaluated",
        }
        if plan.is_trivial:
            result = QueryResult(
                answer=bool(plan.trivial_answer),
                algorithm="planner",
                seconds=0.0,
                passed_vertices=0,
            )
            meta["trivial"] = True
            meta["source"] = "planner"
            annotate(source="planner")
            self.stats.record_query(result, trivial=True, batch=batch)
            elapsed = perf_counter() - started
            self.stats.record_latency("query", elapsed)
            self._record_slow(plan, meta, result, elapsed)
            return result, meta
        cache_key = (epoch.epoch_id, *plan.key)
        if use_cache:
            with span("result-cache") as cache_span:
                cached = self.results.get(cache_key)
                cache_span.set(hit=cached is not None)
            if cached is not None:
                meta["cached"] = True
                meta["source"] = "result-cache"
                annotate(source="result-cache")
                self.stats.record_query(cached, cached=True, batch=batch)
                elapsed = perf_counter() - started
                self.stats.record_latency("query", elapsed)
                self._record_slow(plan, meta, cached, elapsed)
                return cached, meta
        with span("execute", algorithm=plan.algorithm) as execute_span:
            result = self._execute(plan, epoch, mode)
            execute_span.set(
                answer=result.answer,
                passed_vertices=result.passed_vertices,
                scck_calls=result.scck_calls,
                vsg_size=result.vsg_size,
                lcs_calls=result.lcs_calls,
                index_resolutions=result.index_resolutions,
            )
        annotate(source="evaluated")
        if self.approx is not None and not plan.forced:
            # The routing decision, stamped for clients and the flight
            # recorder: short-circuit answers are exact (sound bounds),
            # "approximate" marks the one case the answer is a guess.
            if result.algorithm == APPROX_ALGORITHM:
                meta["tier"] = "approximate"
            elif result.algorithm in SHORT_CIRCUIT_ALGORITHMS:
                meta["tier"] = "short-circuit"
            else:
                meta["tier"] = "exact"
        if result.degraded is not None:
            # A degraded answer reflects whichever shards happened to be
            # alive at execution time; caching it would keep serving the
            # outage after the shards recover.
            meta["degraded"] = result.degraded
            annotate(degraded=True)
            self.stats.record_degraded()
        elif use_cache and result.algorithm != APPROX_ALGORITHM:
            # Approximate answers are best-effort guesses; caching one
            # would let it leak into later exact-mode requests.
            self.results.put(cache_key, result)
        self.stats.record_query(result, batch=batch)
        elapsed = perf_counter() - started
        self.stats.record_latency("query", elapsed)
        self._record_slow(plan, meta, result, elapsed)
        return result, meta

    def _record_slow(
        self, plan: QueryPlan, meta: dict, result: QueryResult, elapsed: float
    ) -> None:
        """Offer one answered query to the slow-query flight recorder.

        ``interested`` is a lock-free float compare, so sub-threshold
        traffic pays nothing beyond it.  When the request was traced the
        entry captures the span tree as recorded *so far* — for a single
        query that is the whole trace, for a batch member its own
        ``query`` span — so ``/debug/slow`` shows where the time went,
        not just that it went.
        """
        if not self.flight.interested(elapsed):
            return
        source, target, labels, constraint = plan.key
        trace = current_trace()
        entry: dict[str, Any] = {
            "query": {
                "source": source,
                "target": target,
                "labels": list(labels),
                "constraint": constraint,
            },
            "algorithm": result.algorithm,
            "answer": result.answer,
            # Which tier settled the answer — a bounds-index miss that
            # fell through to an evaluator stall triages differently
            # from a slow short-circuit.
            "tier": meta.get("tier", "exact"),
            "meta": dict(meta),
            "trace_id": trace.trace_id if trace is not None else None,
            "trace": None,
        }
        if trace is not None:
            scope = current_span()
            entry["trace"] = (
                scope.to_dict() if scope is not None else trace.to_dict()
            )
        self.flight.record(elapsed, entry)

    def _execute(
        self, plan: QueryPlan, epoch: GraphEpoch, mode: str = "exact"
    ) -> QueryResult:
        """Route one non-trivial plan: bounds tier first, then exact.

        The approx tier tries to settle the query soundly before any
        evaluator runs — definite-No from the label-blind upper bound,
        definite-Yes from a re-verified witness path — and everything
        uncertain falls through to :meth:`_evaluate` (in
        ``mode=approximate``, the uncertain band is instead answered
        True from the bounds alone, with sampled exact re-checks
        feeding the false-rate accounting).  Forced-algorithm plans
        bypass routing entirely: naming an algorithm is a request to
        *run* it.

        The ambient request deadline (if any) is checked once here —
        before the router or evaluator starts — so a budget that lapsed
        in the admission queue or an earlier batch member fails without
        paying for a doomed traversal; the evaluators themselves check
        it per loop iteration after that.
        """
        assert plan.query is not None
        check_deadline("execute")
        router = self.approx
        if router is None or plan.forced:
            return self._evaluate(plan, epoch)
        with span("route", mode=mode) as route_span:
            decision = router.decide(plan, epoch)
            if decision is not None:
                route_span.set(tier="short-circuit", verdict=decision.verdict)
                return decision.result
            route_span.set(verdict="uncertain")
            if mode == "approximate":
                route_span.set(tier="approximate")
                result = router.approximate_result()
                if router.should_recheck():
                    exact = self._evaluate(plan, epoch)
                    router.record_recheck(
                        mismatch=exact.answer != result.answer
                    )
                    if exact.answer and exact.degraded is None:
                        router.remember_witness(plan, epoch)
                return result
            route_span.set(tier="exact")
        router.record_fallthrough()
        result = self._evaluate(plan, epoch)
        if result.answer and result.degraded is None:
            # A True exact answer certifies a witness path exists; pull
            # it out now so the next repeat is a definite-Yes without
            # touching INS/UIS* (the epoch's candidate cache makes the
            # extraction one BFS, not a second SPARQL evaluation).
            with span("witness-extract") as witness_span:
                witness_span.set(stored=router.remember_witness(plan, epoch))
        return result

    def _evaluate(self, plan: QueryPlan, epoch: GraphEpoch) -> QueryResult:
        """Run one plan on the session it names — the exact path.

        The execution seam subclasses reroute: the sharded service
        (:class:`repro.shard.ShardedQueryService`) sends non-forced
        plans to its scatter-gather coordinator instead — which is why
        the router above lives in :meth:`_execute`, not here: the
        coordinator-local bounds answer before anything scatters.
        """
        assert plan.query is not None
        return epoch.session(plan.algorithm).answer(plan.query)

    def _session(self, algorithm: str) -> LSCRSession:
        """The current epoch's session for ``algorithm`` (back-compat)."""
        return self._epoch.session(algorithm)

    # ------------------------------------------------------------------
    # JSON-level API (used by the HTTP front end)
    # ------------------------------------------------------------------

    def _start_trace(self, name: str, requested: bool) -> Trace | None:
        """A trace for one request, or None when it runs untraced.

        Client-requested (``?trace=1``) always traces; otherwise the
        sampler decides (``sampled=True`` marks those — they feed the
        flight recorder but are never echoed to the client).
        """
        if requested:
            return Trace(name)
        if self._sampler.sample():
            return Trace(name, sampled=True)
        return None

    def _admit(self):
        """An admission slot for one request (no-op when unconfigured).

        Raises on the way in: a full queue or an expired wait surfaces
        as a structured 429 (:class:`OverloadedError`, carrying
        ``Retry-After``) — or a 504 when the request's own deadline
        lapsed while queued — and is counted as shed before it
        propagates.
        """
        admission = self.admission
        if admission is None:
            return nullcontext()
        try:
            return admission.admit(current_deadline())
        except OverloadedError:
            self.stats.record_shed()
            raise

    def handle_query(
        self,
        payload: object,
        *,
        trace: bool = False,
        mode: str | None = None,
    ) -> dict:
        """``POST /query``: validate a JSON payload and answer it.

        With ``trace=True`` (the HTTP layer's ``?trace=1``) the response
        carries the request's full span tree under ``"trace"``.
        ``mode`` (the ``?mode=`` query parameter) picks exact or
        approximate answering; invalid values 400 via
        :meth:`_resolve_mode`.
        """
        spec = self._validate_spec(payload, where="query")
        with self._admit():
            active = self._start_trace("query", trace)
            if active is None:
                result, meta = self._query_spec(spec, mode=mode)
                return self._result_payload(result, meta)
            with use_trace(active):
                try:
                    result, meta = self._query_spec(spec, mode=mode)
                finally:
                    active.finish()
        response = self._result_payload(result, meta)
        if trace:
            response["trace"] = active.to_dict()
        return response

    def _query_spec(
        self, spec: dict, mode: str | None = None
    ) -> tuple[QueryResult, dict]:
        try:
            return self.query(
                spec["source"],
                spec["target"],
                spec["labels"],
                spec["constraint"],
                algorithm=spec.get("algorithm"),
                use_cache=spec.get("use_cache", True),
                mode=mode,
            )
        except (ConstraintError, SparqlError) as error:
            raise BadRequestError(f"invalid query: {error}") from error

    def handle_batch(
        self,
        payload: object,
        *,
        trace: bool = False,
        mode: str | None = None,
    ) -> dict:
        """``POST /batch``: validate and answer a batch payload."""
        if not isinstance(payload, dict) or "queries" not in payload:
            raise BadRequestError(
                "batch body must be a JSON object with a 'queries' array"
            )
        raw = payload["queries"]
        if not isinstance(raw, list) or not raw:
            raise BadRequestError("'queries' must be a non-empty array")
        use_cache = payload.get("use_cache", True)
        if not isinstance(use_cache, bool):
            raise BadRequestError("'use_cache' must be a boolean")
        specs = [
            self._validate_spec(item, where=f"queries[{position}]")
            for position, item in enumerate(raw)
        ]
        with self._admit():
            active = self._start_trace("batch", trace)
            try:
                if active is None:
                    answered = self.query_batch(
                        specs, use_cache=use_cache, mode=mode
                    )
                else:
                    with use_trace(active):
                        try:
                            answered = self.query_batch(
                                specs, use_cache=use_cache, mode=mode
                            )
                        finally:
                            active.finish()
            except (ConstraintError, SparqlError) as error:
                raise BadRequestError(
                    f"invalid query in batch: {error}"
                ) from error
        response = {
            "count": len(answered),
            "results": [self._result_payload(r, m) for r, m in answered],
        }
        if trace and active is not None:
            response["trace"] = active.to_dict()
        return response

    def handle_updates(self, payload: object, *, trace: bool = False) -> dict:
        """``POST /edges``: validate a JSON update batch and apply it.

        On a read-only follower the request is refused with a structured
        403 *before* validation side effects — the gate lives here, at
        the HTTP boundary, so the follower's own log tailer can still
        call :meth:`apply_updates` directly.
        """
        if self.read_only:
            raise ReadOnlyServiceError()
        updates = validate_edge_updates(payload, max_edges=self.max_batch)
        if not trace:
            return self.apply_updates(updates)
        active = Trace("updates")
        with use_trace(active):
            try:
                summary = self.apply_updates(updates)
            finally:
                active.finish()
        summary["trace"] = active.to_dict()
        return summary

    def health(self) -> dict:
        """``GET /healthz``: liveness plus what is loaded.

        A durable leader adds a ``"wal"`` section (records appended,
        segment count, snapshot epoch); a follower adds ``"replication"``
        (role, applied vs log-tip epoch, lag in epochs and seconds) — the
        fields load balancers and operators watch to keep stale replicas
        out of rotation.
        """
        epoch = self._epoch
        payload = {
            "status": "ok",
            "graph": epoch.graph.name,
            "vertices": epoch.graph.num_vertices,
            "edges": epoch.graph.num_edges,
            "labels": epoch.graph.num_labels,
            "graph_frozen": isinstance(epoch.graph, FrozenGraph),
            "index_loaded": epoch.index is not None,
            "default_algorithm": self.default_algorithm,
            "epoch": epoch.epoch_id,
            "fingerprint": epoch.fingerprint,
            "version": __version__,
            "started_at": self.stats.started_at,
            "uptime_seconds": self.stats.uptime_seconds,
        }
        if self._wal is not None:
            payload["wal"] = self._wal.describe()
        if self.replication is not None:
            payload["replication"] = self.replication.describe()
        return payload

    def stats_snapshot(self) -> dict:
        """``GET /stats``: the full telemetry document."""
        epoch = self._epoch
        index_info: dict[str, Any] = {"loaded": epoch.index is not None}
        if epoch.index is not None:
            index_info["landmarks"] = len(epoch.index.partition.landmarks)
        document = {
            "service": self.stats.snapshot(),
            "result_cache": self.results.stats().as_dict(),
            "constraint_cache": self.constraints.stats().as_dict(),
            "candidate_cache": epoch.candidates.stats().as_dict(),
            "graph": {
                "name": epoch.graph.name,
                "vertices": epoch.graph.num_vertices,
                "edges": epoch.graph.num_edges,
                "labels": epoch.graph.num_labels,
            },
            "index": index_info,
            "epoch": epoch.describe(),
            "slow_queries": self.flight.summary(),
            "config": {
                "default_algorithm": self.default_algorithm,
                "cache_size": self.results.max_size,
                "cache_ttl": self.results.ttl_seconds,
                "max_workers": self.executor.max_workers,
                "max_batch": self.max_batch,
                "seed": self.seed,
                "trace_sample": self.trace_sample,
                "slow_ms": self.flight.threshold_ms,
                "slow_log_size": self.flight.max_entries,
                "approx": self.approx is not None,
                "approx_default": (
                    self.approx is not None
                    and self.approx.default_mode == "approximate"
                ),
            },
        }
        if self.approx is not None:
            approx_stats = self.approx.stats()
            approx_stats["bounds"] = (
                epoch.bounds.describe()
                if epoch.bounds is not None
                else {"mode": "none"}
            )
            document["approx"] = approx_stats
        if self.admission is not None:
            document["admission"] = self.admission.stats()
        if self._wal is not None:
            document["wal"] = self._wal.describe()
        if self.replication is not None:
            document["replication"] = self.replication.describe()
        return document

    # ------------------------------------------------------------------
    # cache + stats persistence (ROADMAP "Cache warming and persistence")
    # ------------------------------------------------------------------

    def save_snapshot(self, path: str | Path) -> int:
        """Persist the result cache and stats ledger as JSON.

        The snapshot carries every unexpired result-cache entry of the
        *current* epoch (keys stored without the epoch prefix — the
        document-level identity pins them to one graph version) plus the
        :meth:`ServiceStats.snapshot` document, tagged with the graph's
        full identity: name, sizes, epoch id and content fingerprint, so
        :meth:`load_snapshot` can refuse a mismatched file even when
        every size coincides.  Written atomically (write-then-rename,
        like the index store).  Returns the file size in bytes.
        """
        epoch = self._epoch
        document = {
            "format_version": _SNAPSHOT_VERSION,
            "graph": {
                "name": epoch.graph.name,
                "vertices": epoch.graph.num_vertices,
                "edges": epoch.graph.num_edges,
                "epoch": epoch.epoch_id,
                "fingerprint": epoch.fingerprint,
            },
            "results": [
                {
                    "key": [key[1], key[2], list(key[3]), key[4]],
                    "result": asdict(result),
                }
                for key, result in self.results.export_entries()
                if key[0] == epoch.epoch_id
            ],
            "stats": self.stats.snapshot(),
        }
        return atomic_write_json(document, path)

    def load_snapshot(
        self,
        path: str | Path,
        *,
        epoch_fingerprints: dict[int, str] | None = None,
    ) -> dict:
        """Warm the result cache and stats from a :meth:`save_snapshot` file.

        Raises :class:`~repro.exceptions.ServiceConfigError` when the
        file was written for a different graph — a stale cache must
        never answer for the wrong data.  The identity check goes beyond
        ``(name, vertices, edges)``: the epoch id and a content
        fingerprint (label universe + order-insensitive digest of every
        edge) must match too, so a mutated-then-same-size graph is
        refused instead of silently serving the old graph's answers.

        ``epoch_fingerprints`` relaxes the refusal for WAL recovery,
        where a warm-cache file is routinely one or more epochs *behind*
        the replayed log tip: a mapping ``{epoch_id: fingerprint}`` of
        this graph's logged history (``TenantWal.fingerprints``).  A
        snapshot whose ``(epoch, fingerprint)`` matches an *ancestor*
        epoch in that history is accepted for its stats ledger, but its
        result entries — answers for an older graph version — are
        dropped, not warmed.  Anything that matches neither the current
        epoch nor a verified ancestor is still refused.

        Returns ``{"results": n, "stale_results": m}`` — entries warmed
        into the current epoch's cache vs. dropped as pre-tip.
        """
        path = Path(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise ServiceConfigError(
                f"cannot read service snapshot {path}: {error}"
            ) from error
        if document.get("format_version") != _SNAPSHOT_VERSION:
            raise ServiceConfigError(
                f"unsupported snapshot format version "
                f"{document.get('format_version')!r} in {path}"
            )
        epoch = self._epoch
        graph_info = document.get("graph", {})
        ours = (
            epoch.graph.name,
            epoch.graph.num_vertices,
            epoch.graph.num_edges,
            epoch.epoch_id,
            epoch.fingerprint,
        )
        theirs = (
            graph_info.get("name"),
            graph_info.get("vertices"),
            graph_info.get("edges"),
            graph_info.get("epoch"),
            graph_info.get("fingerprint"),
        )
        if ours != theirs:
            their_epoch = graph_info.get("epoch")
            verified_ancestor = (
                epoch_fingerprints is not None
                and graph_info.get("name") == epoch.graph.name
                and isinstance(their_epoch, int)
                and their_epoch < epoch.epoch_id
                and epoch_fingerprints.get(their_epoch)
                == graph_info.get("fingerprint")
            )
            if not verified_ancestor:
                raise ServiceConfigError(
                    f"snapshot {path} was taken for graph "
                    f"(name, |V|, |E|, epoch, fingerprint) = {theirs}, "
                    f"this service hosts {ours}"
                )
            # Pre-tip snapshot of our own lineage: the counters carry
            # over, the cached answers do not.
            stale = len(document.get("results", []))
            self.stats.restore(document.get("stats", {}))
            return {"results": 0, "stale_results": stale}
        entries = []
        for item in document.get("results", []):
            source, target, labels, constraint = item["key"]
            key = (epoch.epoch_id, source, target, tuple(labels), constraint)
            entries.append((key, QueryResult(**item["result"])))
        warmed = self.results.import_entries(entries)
        self.stats.restore(document.get("stats", {}))
        return {"results": warmed, "stale_results": 0}

    # ------------------------------------------------------------------

    @staticmethod
    def _validate_spec(payload: object, *, where: str) -> dict:
        """Shape-check one JSON query spec into :meth:`query` kwargs."""
        if not isinstance(payload, dict):
            raise BadRequestError(f"{where}: expected a JSON object")
        missing = [field for field in _SPEC_FIELDS if field not in payload]
        if missing:
            raise BadRequestError(f"{where}: missing field(s) {', '.join(missing)}")
        source = payload["source"]
        target = payload["target"]
        if not isinstance(source, str) or not isinstance(target, str):
            raise BadRequestError(f"{where}: 'source' and 'target' must be strings")
        labels = payload["labels"]
        if isinstance(labels, str):
            labels = [piece for piece in labels.split(",") if piece]
        if (
            not isinstance(labels, list)
            or not labels
            or not all(isinstance(label, str) for label in labels)
        ):
            raise BadRequestError(
                f"{where}: 'labels' must be a non-empty array of strings "
                "(or a comma-separated string)"
            )
        constraint = payload["constraint"]
        if not isinstance(constraint, str) or not constraint.strip():
            raise BadRequestError(
                f"{where}: 'constraint' must be a non-empty SPARQL string"
            )
        algorithm = payload.get("algorithm")
        if algorithm is not None and not isinstance(algorithm, str):
            raise BadRequestError(f"{where}: 'algorithm' must be a string")
        use_cache = payload.get("use_cache", True)
        if not isinstance(use_cache, bool):
            raise BadRequestError(f"{where}: 'use_cache' must be a boolean")
        return {
            "source": source,
            "target": target,
            "labels": labels,
            "constraint": constraint,
            "algorithm": algorithm,
            "use_cache": use_cache,
        }

    @staticmethod
    def _result_payload(result: QueryResult, meta: dict) -> dict:
        """One query's JSON response body."""
        payload = {
            "answer": result.answer,
            "algorithm": result.algorithm,
            "seconds": result.seconds,
            "passed_vertices": result.passed_vertices,
            "cached": meta["cached"],
            "trivial": meta["trivial"],
            "reason": meta["reason"],
            "epoch": meta["epoch"],
            "source": meta.get("source", "evaluated"),
        }
        if "tier" in meta:
            # Which approx-tier path settled the answer: "short-circuit"
            # (sound bounds/witness, exact), "exact" (fell through to
            # the evaluators) or "approximate" (best-effort guess).
            payload["tier"] = meta["tier"]
        if "degraded" in meta:
            # Shards were missing: ``answer`` covers only the surviving
            # slices, and ``degraded["verdict"]`` says how to read it —
            # "reachable" is still proven, "unknown" is not a "no".
            payload["degraded"] = meta["degraded"]
        return payload
