"""Shard workers: the expand/answer half of scatter-gather serving.

A worker owns one :class:`~repro.shard.partitioner.GraphSlice` and
exposes exactly two operations the coordinator needs:

* :meth:`ShardWorker.expand` — the scatter-gather primitive: given
  frontier seeds the shard owns and a label mask, compute the *local*
  closure through the slice's CSR arrays and report (a) every owned
  vertex reached and (b) every border crossing, grouped by the shard
  owning the crossed-to vertex.  Stateless across queries — the
  coordinator ships the shard's previously expanded set back as
  ``exclude`` — so any number of queries can fan out concurrently and a
  worker can live in another process;
* :meth:`ShardWorker.local_query` — the co-located fast path: the
  worker wraps a full per-slice :class:`~repro.service.app.QueryService`
  over its slice graph, and because a slice's edges are a subset of the
  graph's, a *true* answer from the slice is a true answer globally
  (false means "unknown", and the coordinator falls back to
  scatter-gather).

Both operations also speak JSON (:meth:`handle_expand`,
:meth:`handle_query`), which is how the existing HTTP layer hosts a
worker in a separate process (``POST /shard/<id>/expand``);
:class:`HttpShardWorker` is the matching client stub with the same
Python interface, so the coordinator cannot tell local from remote.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from collections.abc import Iterable
from dataclasses import dataclass, field
from time import perf_counter

from repro.core.query import LSCRQuery
from repro.exceptions import BadRequestError, DeadlineExceededError
from repro.resilience.deadline import Deadline
from repro.service.app import QueryService
from repro.shard.partitioner import GraphSlice

__all__ = [
    "DEFAULT_HTTP_TIMEOUT",
    "ExpandResult",
    "ShardWorker",
    "HttpShardWorker",
]

#: Socket timeout for remote workers when neither ``--shard-timeout``
#: nor a request deadline narrows it.
DEFAULT_HTTP_TIMEOUT = 30.0


@dataclass(frozen=True)
class ExpandResult:
    """One shard's contribution to one scatter-gather round."""

    #: Owned vertices expanded this call (seeds plus their local closure).
    reached: tuple[int, ...]
    #: Border crossings: owning shard id → external vertex ids reached.
    crossings: dict[int, tuple[int, ...]]
    #: Vertices whose adjacency was scanned (telemetry).
    expanded: int
    #: When the caller propagated a trace id: this expand as a
    #: serialised span dict, ready for the coordinator to stitch into
    #: the request's trace (None when the call was untraced).  Workers
    #: build the dict themselves — in another process there is no shared
    #: context variable, so the trace travels by value over the wire.
    span: dict | None = field(default=None, compare=False)


class ShardWorker:
    """In-process worker serving one :class:`GraphSlice`.

    Thread-safe: :meth:`expand` touches only per-call state plus the
    slice's read-only CSR (whose lazy mask-view cells are safe under
    concurrent writers), and counters mutate under one lock.
    """

    def __init__(
        self,
        graph_slice: GraphSlice,
        *,
        seed: int = 0,
        local_service: bool = True,
        cache_size: int = 1024,
        cache_ttl: float | None = None,
    ) -> None:
        self.slice = graph_slice
        self.shard_id = graph_slice.shard_id
        #: The per-slice query service behind the co-located fast path
        #: (and the worker's own /stats when served remotely).  Cache
        #: knobs follow the owning service's so ``cache_size=0`` really
        #: does disable every cache in a sharded deployment.
        self.service: QueryService | None = (
            QueryService(
                graph_slice.to_graph(),
                seed=seed,
                cache_size=cache_size,
                cache_ttl=cache_ttl,
                # The owning service's router already consulted *its*
                # bounds before the fast path reached this slice; a
                # per-slice bounds index would only duplicate the build.
                approx=False,
            )
            if local_service
            else None
        )
        self._lock = threading.Lock()
        self._expand_calls = 0
        self._seeds_in = 0
        self._reached_out = 0
        self._crossings_out = 0
        self._local_queries = 0
        self._local_hits = 0

    def __repr__(self) -> str:
        return f"ShardWorker(shard={self.shard_id}, slice={self.slice!r})"

    # ------------------------------------------------------------------
    # the scatter-gather primitive
    # ------------------------------------------------------------------

    def expand(
        self,
        seeds: Iterable[int],
        mask: int,
        exclude: Iterable[int] = (),
        trace: str | None = None,
        deadline_ms: float | None = None,
    ) -> ExpandResult:
        """Local closure of ``seeds`` under ``mask`` within the slice.

        ``exclude`` names owned vertices already expanded for this query
        in earlier rounds (their adjacency was fully scanned then, so
        re-walking them could only rediscover known vertices).  Seeds
        not owned by this shard are ignored defensively.  Crossings may
        include vertices the coordinator has already seen — deduplication
        against the *global* visited set is the coordinator's job, since
        only it has that set.

        ``trace`` is the requesting trace's id: when set, the result
        carries this call as a span dict (:attr:`ExpandResult.span`),
        which the coordinator attaches under its round span — the wire
        half of cross-process trace stitching.  Untraced calls
        (``trace=None``, the default and the hot path) skip the timing
        entirely.

        ``deadline_ms`` is the *remaining* request budget shipped by the
        coordinator (over the wire for remote workers): the DFS checks
        it so a worker stops early instead of computing a closure whose
        requester already timed out.
        """
        started = perf_counter() if trace is not None else 0.0
        deadline = None
        if deadline_ms is not None:
            if deadline_ms <= 0:
                raise DeadlineExceededError(
                    "shard-expand",
                    elapsed_ms=0.0,
                    budget_ms=max(0.0, deadline_ms),
                    partial={"shard": self.shard_id},
                )
            deadline = Deadline(deadline_ms)
        graph_slice = self.slice
        local_of = graph_slice.local_of
        shard_of = graph_slice.shard_of
        border = graph_slice.border_targets
        vertex_ids = graph_slice.vertex_ids
        my_shard = graph_slice.shard_id
        visited = bytearray(len(vertex_ids))
        for vid in exclude:
            position = local_of.get(vid)
            if position is not None:
                visited[position] = 1
        stack: list[int] = []
        reached: list[int] = []
        seed_count = 0
        for vid in seeds:
            seed_count += 1
            position = local_of.get(vid)
            if position is None or visited[position]:
                continue
            visited[position] = 1
            stack.append(position)
            reached.append(vid)
        crossings: dict[int, set[int]] = {}
        expanded = 0
        targets_masked = graph_slice.csr.targets_masked
        while stack:
            if deadline is not None:
                deadline.check(
                    "shard-expand", shard=my_shard, expanded=expanded
                )
            position = stack.pop()
            expanded += 1
            # The border table's runtime job: one dict probe per vertex
            # decides whether any edge here can cross a shard boundary.
            # Non-border vertices (the bulk, under correlation-guided
            # placement) expand without per-edge ownership checks.
            if vertex_ids[position] not in border:
                for target in targets_masked(position, mask):
                    target_position = local_of[target]
                    if not visited[target_position]:
                        visited[target_position] = 1
                        stack.append(target_position)
                        reached.append(target)
                continue
            for target in targets_masked(position, mask):
                owner = shard_of[target]
                if owner == my_shard:
                    target_position = local_of[target]
                    if not visited[target_position]:
                        visited[target_position] = 1
                        stack.append(target_position)
                        reached.append(target)
                else:
                    crossings.setdefault(owner, set()).add(target)
        crossings_out = {
            owner: tuple(sorted(targets))
            for owner, targets in crossings.items()
        }
        span_doc = None
        if trace is not None:
            span_doc = {
                "name": "expand",
                # A remote worker cannot know its offset from the trace
                # start (no shared clock); 0.0 marks "offset unknown".
                "started": 0.0,
                "seconds": perf_counter() - started,
                "attrs": {
                    "trace_id": trace,
                    "shard": my_shard,
                    "seeds": seed_count,
                    "reached": len(reached),
                    "expanded": expanded,
                    "crossings": sum(len(t) for t in crossings_out.values()),
                },
                "children": [],
            }
        result = ExpandResult(
            reached=tuple(reached),
            crossings=crossings_out,
            expanded=expanded,
            span=span_doc,
        )
        with self._lock:
            self._expand_calls += 1
            self._seeds_in += seed_count
            self._reached_out += len(result.reached)
            self._crossings_out += sum(len(t) for t in result.crossings.values())
        return result

    # ------------------------------------------------------------------
    # the co-located fast path
    # ------------------------------------------------------------------

    def local_query(self, query: LSCRQuery) -> bool:
        """Answer ``query`` against the slice alone; True is conclusive.

        Sound because the slice's edge set is a subset of the graph's:
        an ``L``-path and a substructure match found here exist in the
        full graph too.  ``False`` only means the *slice* lacks a
        witness and the coordinator must scatter.  Workers built with
        ``local_service=False`` always return False.

        The slice's *result* cache is bypassed: repeat-query caching is
        the owning service's job (its result cache sits in front of the
        whole execution path, honouring each request's ``use_cache``),
        and a worker-level cache would leak answers to requests that
        asked for uncached execution.
        """
        service = self.service
        if service is None:
            return False
        if not service.graph.has_vertex(query.source) or not service.graph.has_vertex(
            query.target
        ):
            return False
        result, _meta = service.query(
            query.source,
            query.target,
            sorted(query.labels.labels),
            query.constraint,
            use_cache=False,
        )
        with self._lock:
            self._local_queries += 1
            if result.answer:
                self._local_hits += 1
        return result.answer

    # ------------------------------------------------------------------
    # JSON API (how the HTTP layer hosts a worker in another process)
    # ------------------------------------------------------------------

    def handle_expand(self, payload: object) -> dict:
        """``POST /shard/<id>/expand``: validate and run one expand."""
        if not isinstance(payload, dict):
            raise BadRequestError("expand body must be a JSON object")
        seeds = payload.get("seeds")
        if not isinstance(seeds, list) or not all(
            isinstance(v, int) and not isinstance(v, bool) for v in seeds
        ):
            raise BadRequestError("'seeds' must be an array of vertex ids")
        mask = payload.get("mask")
        if not isinstance(mask, int) or isinstance(mask, bool) or mask < 0:
            raise BadRequestError("'mask' must be a non-negative integer")
        exclude = payload.get("exclude", [])
        if not isinstance(exclude, list) or not all(
            isinstance(v, int) and not isinstance(v, bool) for v in exclude
        ):
            raise BadRequestError("'exclude' must be an array of vertex ids")
        trace = payload.get("trace")
        if trace is not None and not isinstance(trace, str):
            raise BadRequestError("'trace' must be a string trace id")
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None and (
            isinstance(deadline_ms, bool)
            or not isinstance(deadline_ms, (int, float))
        ):
            raise BadRequestError("'deadline_ms' must be a number")
        result = self.expand(
            seeds, mask, exclude, trace=trace, deadline_ms=deadline_ms
        )
        document = {
            "reached": list(result.reached),
            "crossings": {
                str(owner): list(targets)
                for owner, targets in result.crossings.items()
            },
            "expanded": result.expanded,
        }
        if result.span is not None:
            document["trace"] = result.span
        return document

    def handle_query(self, payload: object) -> dict:
        """``POST /shard/<id>/query``: the fast path over the slice service."""
        service = self.service
        if service is None:
            raise BadRequestError(
                f"shard {self.shard_id} runs without a local query service",
                status=404,
            )
        return service.handle_query(payload)

    # ------------------------------------------------------------------

    def describe(self) -> dict:
        """JSON-ready slice sizes + traffic counters for ``/stats``."""
        with self._lock:
            counters = {
                "expand_calls": self._expand_calls,
                "seeds_in": self._seeds_in,
                "reached_out": self._reached_out,
                "crossings_out": self._crossings_out,
                "local_queries": self._local_queries,
                "local_hits": self._local_hits,
            }
        return {**self.slice.describe(), **counters}

    def close(self) -> None:
        """Release the slice service's pooled resources (idempotent)."""
        if self.service is not None:
            self.service.close()


class HttpShardWorker:
    """Client stub driving a remote worker over the existing HTTP layer.

    Implements the same ``expand`` / ``local_query`` surface as
    :class:`ShardWorker`, so a
    :class:`~repro.shard.coordinator.ShardCoordinator` can mix local and
    remote shards freely.  The remote end is any
    :class:`~repro.service.http.ServiceHTTPServer` started with shard
    workers attached (``python -m repro serve --shards N``).
    """

    #: Grace added on top of a deadline-derived socket timeout, so the
    #: remote worker's own deadline check gets to answer with a
    #: structured 504 before the socket gives up.
    DEADLINE_GRACE_SECONDS = 0.25

    def __init__(
        self,
        base_url: str,
        shard_id: int,
        timeout: float | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.shard_id = shard_id
        self.timeout = DEFAULT_HTTP_TIMEOUT if timeout is None else timeout

    def __repr__(self) -> str:
        return f"HttpShardWorker({self.base_url!r}, shard={self.shard_id})"

    def _post(
        self, endpoint: str, payload: dict, *, timeout: float | None = None
    ) -> dict:
        request = urllib.request.Request(
            f"{self.base_url}/shard/{self.shard_id}/{endpoint}",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        budget = self.timeout if timeout is None else timeout
        try:
            with urllib.request.urlopen(request, timeout=budget) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            # Surface the remote worker's structured 504 as the same
            # exception a local worker raises, so the coordinator treats
            # "remote stopped early on our deadline" as deadline expiry,
            # not as a worker failure that trips the breaker.
            body = error.read()
            kind = None
            try:
                kind = json.loads(body)["error"]["type"]
            except Exception:
                pass
            if kind == "deadline-exceeded":
                deadline_ms = payload.get("deadline_ms") or 0.0
                raise DeadlineExceededError(
                    "shard-expand-remote",
                    elapsed_ms=deadline_ms,
                    budget_ms=deadline_ms,
                    partial={"shard": self.shard_id, "remote": self.base_url},
                ) from error
            raise

    def expand(
        self,
        seeds: Iterable[int],
        mask: int,
        exclude: Iterable[int] = (),
        trace: str | None = None,
        deadline_ms: float | None = None,
    ) -> ExpandResult:
        payload = {"seeds": list(seeds), "mask": mask, "exclude": list(exclude)}
        if trace is not None:
            payload["trace"] = trace
        timeout = None
        if deadline_ms is not None:
            # Ship the remaining budget and derive the socket budget from
            # it: never wait longer than the request can still use.
            payload["deadline_ms"] = deadline_ms
            timeout = min(
                self.timeout,
                deadline_ms / 1000.0 + self.DEADLINE_GRACE_SECONDS,
            )
        document = self._post("expand", payload, timeout=timeout)
        span_doc = document.get("trace")
        if span_doc is not None:
            # Stamp where the span came from; everything else in the
            # dict is the remote worker's own account of itself.
            span_doc.setdefault("attrs", {})["remote"] = self.base_url
        return ExpandResult(
            reached=tuple(document["reached"]),
            crossings={
                int(owner): tuple(targets)
                for owner, targets in document["crossings"].items()
            },
            expanded=int(document["expanded"]),
            span=span_doc,
        )

    def local_query(self, query: LSCRQuery) -> bool:
        document = self._post(
            "query",
            {
                "source": str(query.source),
                "target": str(query.target),
                "labels": sorted(query.labels.labels),
                "constraint": query.constraint.to_sparql(),
                # Mirror ShardWorker.local_query: caching belongs to the
                # owning service, not the worker.
                "use_cache": False,
            },
        )
        return bool(document["answer"])

    def describe(self) -> dict:
        return {"shard": self.shard_id, "remote": self.base_url}

    def close(self) -> None:
        """Nothing to release client-side."""
