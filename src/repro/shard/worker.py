"""Shard workers: the expand/answer half of scatter-gather serving.

A worker owns one :class:`~repro.shard.partitioner.GraphSlice` and
exposes the operations the coordinator needs:

* :meth:`ShardWorker.expand` — the scatter-gather primitive: given
  frontier seeds the shard owns and a label mask, compute the *local*
  closure through the slice's CSR arrays and report (a) every owned
  vertex reached and (b) every border crossing, grouped by the shard
  owning the crossed-to vertex.  Stateless across queries — the
  coordinator ships the shard's previously expanded set back as
  ``exclude`` — so any number of queries can fan out concurrently and a
  worker can live in another process.  Every result echoes the worker's
  current **slice epoch**, which is how a coordinator detects that a
  scatter round straddled a slice swap;
* :meth:`ShardWorker.local_query` — the co-located fast path: the
  worker wraps a full per-slice :class:`~repro.service.app.QueryService`
  over its slice graph, and because a slice's edges are a subset of the
  graph's, a *true* answer from the slice is a true answer globally
  (false means "unknown", and the coordinator falls back to
  scatter-gather);
* :meth:`ShardWorker.prepare_update` / :meth:`publish_update` /
  :meth:`abort_update` — the worker half of slice-epoch propagation:
  a coordinator pushing an update stages the re-cut slice (all the
  expensive rebuild work happens here, off the serving path), then
  publishes it as one atomic reference swap.  Workers untouched by a
  batch stage an epoch bump without a slice payload, so the whole
  fleet moves epochs in lockstep.

All of it also speaks JSON (:meth:`handle_expand`, :meth:`handle_query`,
:meth:`handle_update`), which is how the existing HTTP layer hosts a
worker in a separate process (``POST /shard/<id>/{expand,query,update}``
plus the ``GET /shard/<id>`` descriptor); :class:`HttpShardWorker` is
the matching client stub with the same Python interface — over pooled
keep-alive connections — so the coordinator cannot tell local from
remote.
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.parse
from collections.abc import Iterable
from dataclasses import dataclass, field
from time import perf_counter

from repro.core.query import LSCRQuery
from repro.exceptions import (
    BadRequestError,
    DeadlineExceededError,
    RemoteShardError,
    ServiceConfigError,
    SliceFileError,
)
from repro.resilience.deadline import Deadline
from repro.service.app import QueryService
from repro.shard.partitioner import GraphSlice, ShardPlan
from repro.shard.slicefile import SLICE_WIRE_VERSION, slice_from_document

__all__ = [
    "DEFAULT_HTTP_TIMEOUT",
    "ExpandResult",
    "ShardWorker",
    "HttpShardWorker",
]

#: Socket timeout for remote workers when neither ``--shard-timeout``
#: nor a request deadline narrows it.
DEFAULT_HTTP_TIMEOUT = 30.0


@dataclass(frozen=True)
class ExpandResult:
    """One shard's contribution to one scatter-gather round."""

    #: Owned vertices expanded this call (seeds plus their local closure).
    reached: tuple[int, ...]
    #: Border crossings: owning shard id → external vertex ids reached.
    crossings: dict[int, tuple[int, ...]]
    #: Vertices whose adjacency was scanned (telemetry).
    expanded: int
    #: When the caller propagated a trace id: this expand as a
    #: serialised span dict, ready for the coordinator to stitch into
    #: the request's trace (None when the call was untraced).  Workers
    #: build the dict themselves — in another process there is no shared
    #: context variable, so the trace travels by value over the wire.
    span: dict | None = field(default=None, compare=False)
    #: The slice epoch this expand answered for (None from worker
    #: stand-ins that predate slice-epoch propagation).  The coordinator
    #: compares it against its expected epoch: a mismatch means the
    #: round straddled a slice swap and must be retried.
    epoch: int | None = field(default=None, compare=False)


@dataclass(frozen=True)
class _SliceState:
    """Everything that swaps together when a worker publishes a slice.

    Readers load ``worker._state`` once and work off the bundle, so a
    concurrent publish can never hand them the new slice with the old
    epoch (or vice versa) — the same single-atomic-reference discipline
    :class:`~repro.service.epoch.GraphEpoch` uses in the query service.
    """

    slice: GraphSlice
    service: QueryService | None
    epoch: int
    fingerprint: str
    plan_hash: str
    plan: ShardPlan | None


class ShardWorker:
    """In-process worker serving one :class:`GraphSlice`.

    Thread-safe: :meth:`expand` touches only per-call state plus the
    slice's read-only CSR (whose lazy mask-view cells are safe under
    concurrent writers), counters mutate under one lock, and slice
    swaps replace one immutable :class:`_SliceState` reference.
    """

    def __init__(
        self,
        graph_slice: GraphSlice,
        *,
        seed: int = 0,
        local_service: bool = True,
        cache_size: int = 1024,
        cache_ttl: float | None = None,
        epoch: int = 0,
        fingerprint: str = "",
        plan_hash: str = "",
        plan: ShardPlan | None = None,
    ) -> None:
        self.shard_id = graph_slice.shard_id
        self._seed = seed
        self._local_service = local_service
        self._cache_size = cache_size
        self._cache_ttl = cache_ttl
        self._state = _SliceState(
            slice=graph_slice,
            service=self._build_service(graph_slice),
            epoch=epoch,
            fingerprint=fingerprint,
            plan_hash=plan_hash,
            plan=plan,
        )
        self._lock = threading.Lock()
        self._update_lock = threading.Lock()
        self._staged: dict[str, _SliceState] = {}
        self._expand_calls = 0
        self._seeds_in = 0
        self._reached_out = 0
        self._crossings_out = 0
        self._crossings_by_peer: dict[int, int] = {}
        self._local_queries = 0
        self._local_hits = 0
        self._updates_prepared = 0
        self._updates_published = 0
        self._updates_aborted = 0

    def _build_service(self, graph_slice: GraphSlice) -> QueryService | None:
        """The per-slice query service behind the co-located fast path
        (and the worker's own /stats when served remotely).  Cache knobs
        follow the owning service's so ``cache_size=0`` really does
        disable every cache in a sharded deployment.
        """
        if not self._local_service:
            return None
        return QueryService(
            graph_slice.to_graph(),
            seed=self._seed,
            cache_size=self._cache_size,
            cache_ttl=self._cache_ttl,
            # The owning service's router already consulted *its*
            # bounds before the fast path reached this slice; a
            # per-slice bounds index would only duplicate the build.
            approx=False,
        )

    # ------------------------------------------------------------------
    # current-state views (one atomic reference behind them all)
    # ------------------------------------------------------------------

    @property
    def slice(self) -> GraphSlice:
        return self._state.slice

    @property
    def service(self) -> QueryService | None:
        return self._state.service

    @property
    def epoch(self) -> int:
        """The slice epoch this worker currently serves."""
        return self._state.epoch

    @property
    def fingerprint(self) -> str:
        return self._state.fingerprint

    @property
    def plan_hash(self) -> str:
        return self._state.plan_hash

    @property
    def plan(self) -> ShardPlan | None:
        return self._state.plan

    def __repr__(self) -> str:
        state = self._state
        return (
            f"ShardWorker(shard={self.shard_id}, epoch={state.epoch}, "
            f"slice={state.slice!r})"
        )

    # ------------------------------------------------------------------
    # the scatter-gather primitive
    # ------------------------------------------------------------------

    def expand(
        self,
        seeds: Iterable[int],
        mask: int,
        exclude: Iterable[int] = (),
        trace: str | None = None,
        deadline_ms: float | None = None,
    ) -> ExpandResult:
        """Local closure of ``seeds`` under ``mask`` within the slice.

        ``exclude`` names owned vertices already expanded for this query
        in earlier rounds (their adjacency was fully scanned then, so
        re-walking them could only rediscover known vertices).  Seeds
        not owned by this shard are ignored defensively.  Crossings may
        include vertices the coordinator has already seen — deduplication
        against the *global* visited set is the coordinator's job, since
        only it has that set.

        ``trace`` is the requesting trace's id: when set, the result
        carries this call as a span dict (:attr:`ExpandResult.span`),
        which the coordinator attaches under its round span — the wire
        half of cross-process trace stitching.  Untraced calls
        (``trace=None``, the default and the hot path) skip the timing
        entirely.

        ``deadline_ms`` is the *remaining* request budget shipped by the
        coordinator (over the wire for remote workers): the DFS checks
        it so a worker stops early instead of computing a closure whose
        requester already timed out.
        """
        started = perf_counter() if trace is not None else 0.0
        deadline = None
        if deadline_ms is not None:
            if deadline_ms <= 0:
                raise DeadlineExceededError(
                    "shard-expand",
                    elapsed_ms=0.0,
                    budget_ms=max(0.0, deadline_ms),
                    partial={"shard": self.shard_id},
                )
            deadline = Deadline(deadline_ms)
        state = self._state
        graph_slice = state.slice
        local_of = graph_slice.local_of
        shard_of = graph_slice.shard_of
        border = graph_slice.border_targets
        vertex_ids = graph_slice.vertex_ids
        my_shard = graph_slice.shard_id
        visited = bytearray(len(vertex_ids))
        for vid in exclude:
            position = local_of.get(vid)
            if position is not None:
                visited[position] = 1
        stack: list[int] = []
        reached: list[int] = []
        seed_count = 0
        for vid in seeds:
            seed_count += 1
            position = local_of.get(vid)
            if position is None or visited[position]:
                continue
            visited[position] = 1
            stack.append(position)
            reached.append(vid)
        crossings: dict[int, set[int]] = {}
        expanded = 0
        targets_masked = graph_slice.csr.targets_masked
        while stack:
            if deadline is not None:
                deadline.check(
                    "shard-expand", shard=my_shard, expanded=expanded
                )
            position = stack.pop()
            expanded += 1
            # The border table's runtime job: one dict probe per vertex
            # decides whether any edge here can cross a shard boundary.
            # Non-border vertices (the bulk, under correlation-guided
            # placement) expand without per-edge ownership checks.
            if vertex_ids[position] not in border:
                for target in targets_masked(position, mask):
                    target_position = local_of[target]
                    if not visited[target_position]:
                        visited[target_position] = 1
                        stack.append(target_position)
                        reached.append(target)
                continue
            for target in targets_masked(position, mask):
                owner = shard_of[target]
                if owner == my_shard:
                    target_position = local_of[target]
                    if not visited[target_position]:
                        visited[target_position] = 1
                        stack.append(target_position)
                        reached.append(target)
                else:
                    crossings.setdefault(owner, set()).add(target)
        crossings_out = {
            owner: tuple(sorted(targets))
            for owner, targets in crossings.items()
        }
        span_doc = None
        if trace is not None:
            span_doc = {
                "name": "expand",
                # A remote worker cannot know its offset from the trace
                # start (no shared clock); 0.0 marks "offset unknown".
                "started": 0.0,
                "seconds": perf_counter() - started,
                "attrs": {
                    "trace_id": trace,
                    "shard": my_shard,
                    "seeds": seed_count,
                    "reached": len(reached),
                    "expanded": expanded,
                    "crossings": sum(len(t) for t in crossings_out.values()),
                },
                "children": [],
            }
        result = ExpandResult(
            reached=tuple(reached),
            crossings=crossings_out,
            expanded=expanded,
            span=span_doc,
            epoch=state.epoch,
        )
        with self._lock:
            self._expand_calls += 1
            self._seeds_in += seed_count
            self._reached_out += len(result.reached)
            for owner, targets in result.crossings.items():
                self._crossings_out += len(targets)
                self._crossings_by_peer[owner] = (
                    self._crossings_by_peer.get(owner, 0) + len(targets)
                )
        return result

    # ------------------------------------------------------------------
    # the co-located fast path
    # ------------------------------------------------------------------

    def local_query(self, query: LSCRQuery) -> bool:
        """Answer ``query`` against the slice alone; True is conclusive.

        Sound because the slice's edge set is a subset of the graph's:
        an ``L``-path and a substructure match found here exist in the
        full graph too.  ``False`` only means the *slice* lacks a
        witness and the coordinator must scatter.  Workers built with
        ``local_service=False`` always return False.

        The slice's *result* cache is bypassed: repeat-query caching is
        the owning service's job (its result cache sits in front of the
        whole execution path, honouring each request's ``use_cache``),
        and a worker-level cache would leak answers to requests that
        asked for uncached execution.
        """
        service = self._state.service
        if service is None:
            return False
        if not service.graph.has_vertex(query.source) or not service.graph.has_vertex(
            query.target
        ):
            return False
        result, _meta = service.query(
            query.source,
            query.target,
            sorted(query.labels.labels),
            query.constraint,
            use_cache=False,
        )
        with self._lock:
            self._local_queries += 1
            if result.answer:
                self._local_hits += 1
        return result.answer

    # ------------------------------------------------------------------
    # slice-epoch propagation (two-phase slice swap)
    # ------------------------------------------------------------------

    def prepare_update(
        self,
        txn: str,
        *,
        epoch: int,
        fingerprint: str,
        plan_hash: str | None = None,
        slice_document: dict | None = None,
    ) -> dict:
        """Stage the next slice state without serving it.

        With ``slice_document`` the re-cut slice is rebuilt and its
        query service constructed *here* — all the expensive work of a
        swap, off the serving path.  Without it this is a pure epoch
        bump: the batch touched no edge this shard owns, but the fleet's
        epochs must still advance together or the coordinator's skew
        check would flag healthy workers forever.
        """
        if slice_document is not None:
            loaded = slice_from_document(
                slice_document,
                source=f"shard {self.shard_id} update {txn}",
            )
            if loaded.shard_id != self.shard_id:
                raise BadRequestError(
                    f"update {txn} ships slice for shard {loaded.shard_id} "
                    f"to shard {self.shard_id}"
                )
            if loaded.epoch != epoch or loaded.fingerprint != fingerprint:
                raise BadRequestError(
                    f"update {txn} epoch/fingerprint disagree with its "
                    f"slice document (epoch {epoch} vs {loaded.epoch})"
                )
            staged = _SliceState(
                slice=loaded.slice,
                service=self._build_service(loaded.slice),
                epoch=loaded.epoch,
                fingerprint=loaded.fingerprint,
                plan_hash=loaded.plan_hash,
                plan=loaded.plan,
            )
        else:
            current = self._state
            staged = _SliceState(
                slice=current.slice,
                service=current.service,
                epoch=int(epoch),
                fingerprint=fingerprint,
                plan_hash=current.plan_hash if plan_hash is None else plan_hash,
                plan=current.plan,
            )
        return self._stage(txn, staged, staged_slice=slice_document is not None)

    def prepare_slice(
        self,
        txn: str,
        graph_slice: GraphSlice,
        *,
        epoch: int,
        fingerprint: str,
        plan_hash: str,
        plan: ShardPlan | None = None,
    ) -> dict:
        """In-process fast lane of :meth:`prepare_update`.

        A co-hosted coordinator already holds the re-cut
        :class:`GraphSlice` object; staging it directly skips the
        serialize→reparse roundtrip the wire needs.  Semantically
        identical to a prepare with a slice document.
        """
        if graph_slice.shard_id != self.shard_id:
            raise BadRequestError(
                f"update {txn} stages slice for shard {graph_slice.shard_id} "
                f"on shard {self.shard_id}"
            )
        staged = _SliceState(
            slice=graph_slice,
            service=self._build_service(graph_slice),
            epoch=int(epoch),
            fingerprint=fingerprint,
            plan_hash=plan_hash,
            plan=plan,
        )
        return self._stage(txn, staged, staged_slice=True)

    def _stage(self, txn: str, staged: _SliceState, *, staged_slice: bool) -> dict:
        with self._update_lock:
            previous = self._staged.pop(txn, None)
            self._staged[txn] = staged
        if previous is not None:
            self._discard_staged(previous)
        with self._lock:
            self._updates_prepared += 1
        return {
            "shard": self.shard_id,
            "txn": txn,
            "epoch": staged.epoch,
            "plan_hash": staged.plan_hash,
            "staged_slice": staged_slice,
        }

    def publish_update(self, txn: str) -> dict:
        """Swap a staged state in (one atomic reference store)."""
        with self._update_lock:
            staged = self._staged.pop(txn, None)
            if staged is None:
                raise BadRequestError(
                    f"shard {self.shard_id} has no prepared update {txn}",
                    status=409,
                )
            old = self._state
            self._state = staged
        if staged.service is not old.service and old.service is not None:
            old.service.close()
        with self._lock:
            self._updates_published += 1
        return {"shard": self.shard_id, "txn": txn, "epoch": staged.epoch}

    def abort_update(self, txn: str) -> dict:
        """Drop a staged state (idempotent — unknown txns are no-ops)."""
        with self._update_lock:
            staged = self._staged.pop(txn, None)
        if staged is not None:
            self._discard_staged(staged)
            with self._lock:
                self._updates_aborted += 1
        return {
            "shard": self.shard_id,
            "txn": txn,
            "epoch": self._state.epoch,
        }

    def _discard_staged(self, staged: _SliceState) -> None:
        if staged.service is not None and staged.service is not self._state.service:
            staged.service.close()

    # ------------------------------------------------------------------
    # JSON API (how the HTTP layer hosts a worker in another process)
    # ------------------------------------------------------------------

    def handle_expand(self, payload: object) -> dict:
        """``POST /shard/<id>/expand``: validate and run one expand."""
        if not isinstance(payload, dict):
            raise BadRequestError("expand body must be a JSON object")
        seeds = payload.get("seeds")
        if not isinstance(seeds, list) or not all(
            isinstance(v, int) and not isinstance(v, bool) for v in seeds
        ):
            raise BadRequestError("'seeds' must be an array of vertex ids")
        mask = payload.get("mask")
        if not isinstance(mask, int) or isinstance(mask, bool) or mask < 0:
            raise BadRequestError("'mask' must be a non-negative integer")
        exclude = payload.get("exclude", [])
        if not isinstance(exclude, list) or not all(
            isinstance(v, int) and not isinstance(v, bool) for v in exclude
        ):
            raise BadRequestError("'exclude' must be an array of vertex ids")
        trace = payload.get("trace")
        if trace is not None and not isinstance(trace, str):
            raise BadRequestError("'trace' must be a string trace id")
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None and (
            isinstance(deadline_ms, bool)
            or not isinstance(deadline_ms, (int, float))
        ):
            raise BadRequestError("'deadline_ms' must be a number")
        result = self.expand(
            seeds, mask, exclude, trace=trace, deadline_ms=deadline_ms
        )
        document = {
            "reached": list(result.reached),
            "crossings": {
                str(owner): list(targets)
                for owner, targets in result.crossings.items()
            },
            "expanded": result.expanded,
            "epoch": result.epoch,
        }
        if result.span is not None:
            document["trace"] = result.span
        return document

    def handle_query(self, payload: object) -> dict:
        """``POST /shard/<id>/query``: the fast path over the slice service."""
        service = self._state.service
        if service is None:
            raise BadRequestError(
                f"shard {self.shard_id} runs without a local query service",
                status=404,
            )
        return service.handle_query(payload)

    def handle_update(self, payload: object) -> dict:
        """``POST /shard/<id>/update``: the two-phase slice-swap wire.

        ``{"phase": "prepare"|"publish"|"abort", "txn": ..., ...}``.
        Prepare additionally carries the coordinated ``epoch`` and
        ``fingerprint`` plus, for touched shards, the re-cut slice as
        its canonical document.  A ``wire_version`` other than this
        build's is refused before anything is staged.
        """
        if not isinstance(payload, dict):
            raise BadRequestError("update body must be a JSON object")
        wire = payload.get("wire_version", SLICE_WIRE_VERSION)
        if wire != SLICE_WIRE_VERSION:
            raise BadRequestError(
                f"unsupported shard wire version {wire!r} "
                f"(this worker speaks {SLICE_WIRE_VERSION})",
                detail={"wire_version": SLICE_WIRE_VERSION},
            )
        phase = payload.get("phase")
        txn = payload.get("txn")
        if phase not in ("prepare", "publish", "abort"):
            raise BadRequestError(
                "'phase' must be one of 'prepare', 'publish', 'abort'"
            )
        if not isinstance(txn, str) or not txn:
            raise BadRequestError("'txn' must be a non-empty string")
        if phase == "publish":
            return self.publish_update(txn)
        if phase == "abort":
            return self.abort_update(txn)
        epoch = payload.get("epoch")
        if not isinstance(epoch, int) or isinstance(epoch, bool):
            raise BadRequestError("'epoch' must be an integer")
        fingerprint = payload.get("fingerprint")
        if not isinstance(fingerprint, str):
            raise BadRequestError("'fingerprint' must be a string")
        plan_hash = payload.get("plan_hash")
        if plan_hash is not None and not isinstance(plan_hash, str):
            raise BadRequestError("'plan_hash' must be a string")
        slice_doc = payload.get("slice")
        if slice_doc is not None and not isinstance(slice_doc, dict):
            raise BadRequestError("'slice' must be a slice document object")
        try:
            return self.prepare_update(
                txn,
                epoch=epoch,
                fingerprint=fingerprint,
                plan_hash=plan_hash,
                slice_document=slice_doc,
            )
        except SliceFileError as error:
            raise BadRequestError(
                f"slice document rejected: {error}",
                detail={"phase": "prepare", "txn": txn},
            ) from None

    # ------------------------------------------------------------------

    def describe(self) -> dict:
        """JSON-ready descriptor: identity + slice sizes + counters.

        Served verbatim as ``GET /shard/<id>`` — the handshake and
        health-probe surface — and embedded in the owning service's
        ``/stats`` shards section.
        """
        state = self._state
        with self._lock:
            counters = {
                "expand_calls": self._expand_calls,
                "seeds_in": self._seeds_in,
                "reached_out": self._reached_out,
                "crossings_out": self._crossings_out,
                "crossings_by_peer": {
                    str(owner): count
                    for owner, count in sorted(self._crossings_by_peer.items())
                },
                "local_queries": self._local_queries,
                "local_hits": self._local_hits,
                "updates_prepared": self._updates_prepared,
                "updates_published": self._updates_published,
                "updates_aborted": self._updates_aborted,
            }
        return {
            **state.slice.describe(),
            "epoch": state.epoch,
            "fingerprint": state.fingerprint,
            "plan_hash": state.plan_hash,
            "wire_version": SLICE_WIRE_VERSION,
            **counters,
        }

    def crossings_by_peer(self) -> dict[int, int]:
        """Live border-crossing counts per peer shard (for rebalancing)."""
        with self._lock:
            return dict(self._crossings_by_peer)

    def close(self) -> None:
        """Release the slice service's pooled resources (idempotent)."""
        with self._update_lock:
            staged = list(self._staged.values())
            self._staged.clear()
        for state in staged:
            self._discard_staged(state)
        service = self._state.service
        if service is not None:
            service.close()


class _KeepAlivePool:
    """A tiny keep-alive connection pool for one worker base URL.

    ``http.client`` connections are not thread-safe, so the pool hands
    each caller exclusive use of one connection (LIFO — the most
    recently used connection is the least likely to have been idled out
    by the server) and takes it back afterwards.  Connections whose
    response closed the stream, or that erred mid-call, are discarded.
    """

    def __init__(self, base_url: str, timeout: float) -> None:
        parts = urllib.parse.urlsplit(base_url)
        if parts.scheme != "http":
            raise ServiceConfigError(
                f"shard worker URLs must be http://, got {base_url!r}"
            )
        if parts.hostname is None:
            raise ServiceConfigError(f"shard worker URL has no host: {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port if parts.port is not None else 80
        #: Path prefix in front of /shard/<id>/... (usually empty).
        self.prefix = parts.path.rstrip("/")
        self.timeout = timeout
        self._idle: list[http.client.HTTPConnection] = []
        self._lock = threading.Lock()
        self._closed = False
        self.opened = 0
        self.reused = 0
        self.reconnects = 0

    def acquire(self) -> tuple[http.client.HTTPConnection, bool]:
        """An exclusive connection plus whether it is being reused."""
        with self._lock:
            if self._idle:
                self.reused += 1
                return self._idle.pop(), True
            self.opened += 1
        return (
            http.client.HTTPConnection(self.host, self.port, timeout=self.timeout),
            False,
        )

    def release(self, connection: http.client.HTTPConnection) -> None:
        with self._lock:
            if not self._closed:
                self._idle.append(connection)
                return
        connection.close()

    def discard(self, connection: http.client.HTTPConnection) -> None:
        connection.close()

    def note_reconnect(self) -> None:
        with self._lock:
            self.reconnects += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "connections_opened": self.opened,
                "connection_reuses": self.reused,
                "reconnects": self.reconnects,
                "idle_connections": len(self._idle),
            }

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
            self._closed = True
        for connection in idle:
            connection.close()


class HttpShardWorker:
    """Client stub driving a remote worker over the existing HTTP layer.

    Implements the same ``expand`` / ``local_query`` /
    ``prepare_update`` / ``publish_update`` / ``abort_update`` surface
    as :class:`ShardWorker`, so a
    :class:`~repro.shard.coordinator.ShardCoordinator` can mix local and
    remote shards freely.  The remote end is any
    :class:`~repro.service.http.ServiceHTTPServer` with shard workers
    attached (``python -m repro serve --worker SLICE_FILE``, or a
    co-hosted ``serve --shards N``).

    Calls ride a per-worker pool of keep-alive connections instead of a
    fresh TCP handshake per expand (a measurable share of the remote
    round-trip); a stale pooled connection — the server idled it out —
    is detected on the first read and retried once on a fresh one.
    """

    #: Grace added on top of a deadline-derived socket timeout, so the
    #: remote worker's own deadline check gets to answer with a
    #: structured 504 before the socket gives up.
    DEADLINE_GRACE_SECONDS = 0.25

    #: Remote workers have no in-process query service to snapshot;
    #: callers probing for one (stats aggregation) see None.
    service = None

    def __init__(
        self,
        base_url: str,
        shard_id: int,
        timeout: float | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.shard_id = shard_id
        self.timeout = DEFAULT_HTTP_TIMEOUT if timeout is None else timeout
        self._pool = _KeepAlivePool(self.base_url, self.timeout)

    def __repr__(self) -> str:
        return f"HttpShardWorker({self.base_url!r}, shard={self.shard_id})"

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        timeout: float | None = None,
    ) -> tuple[int, bytes]:
        """One HTTP exchange over a pooled connection.

        Returns ``(status, body)``.  A stale reused connection (closed
        server-side while idle) surfaces as a connection error on the
        first use; that exact case retries once on a fresh connection —
        other failures propagate, because the caller's retry policy and
        breaker own that decision.
        """
        body = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            connection, reused = self._pool.acquire()
            try:
                per_call = self.timeout if timeout is None else timeout
                connection.timeout = per_call
                if connection.sock is not None:
                    connection.sock.settimeout(per_call)
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                data = response.read()
                status = response.status
                if response.will_close:
                    self._pool.discard(connection)
                else:
                    self._pool.release(connection)
                return status, data
            except (
                http.client.RemoteDisconnected,
                ConnectionResetError,
                BrokenPipeError,
            ):
                self._pool.discard(connection)
                if reused and attempt == 0:
                    self._pool.note_reconnect()
                    continue
                raise
            except Exception:
                self._pool.discard(connection)
                raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _shard_path(self, endpoint: str = "") -> str:
        base = f"{self._pool.prefix}/shard/{self.shard_id}"
        return f"{base}/{endpoint}" if endpoint else base

    def _decode(self, status: int, data: bytes, *, deadline_ms: float | None = None) -> dict:
        """Decode a response, mapping remote errors onto local exceptions."""
        if 200 <= status < 300:
            try:
                return json.loads(data)
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                raise RemoteShardError(
                    self.shard_id, status, f"unparseable response body: {error}"
                ) from None
        kind = None
        message = data.decode("utf-8", "replace")[:200]
        try:
            error_doc = json.loads(data)["error"]
            kind = error_doc.get("type")
            message = error_doc.get("message", message)
        except Exception:
            pass
        if kind == "deadline-exceeded":
            # Surface the remote worker's structured 504 as the same
            # exception a local worker raises, so the coordinator treats
            # "remote stopped early on our deadline" as deadline expiry,
            # not as a worker failure that trips the breaker.
            budget = deadline_ms or 0.0
            raise DeadlineExceededError(
                "shard-expand-remote",
                elapsed_ms=budget,
                budget_ms=budget,
                partial={"shard": self.shard_id, "remote": self.base_url},
            )
        raise RemoteShardError(self.shard_id, status, message)

    def _post(
        self,
        endpoint: str,
        payload: dict,
        *,
        timeout: float | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        status, data = self._request(
            "POST", self._shard_path(endpoint), payload, timeout=timeout
        )
        return self._decode(status, data, deadline_ms=deadline_ms)

    # ------------------------------------------------------------------
    # the ShardWorker surface
    # ------------------------------------------------------------------

    def expand(
        self,
        seeds: Iterable[int],
        mask: int,
        exclude: Iterable[int] = (),
        trace: str | None = None,
        deadline_ms: float | None = None,
    ) -> ExpandResult:
        payload = {"seeds": list(seeds), "mask": mask, "exclude": list(exclude)}
        if trace is not None:
            payload["trace"] = trace
        timeout = None
        if deadline_ms is not None:
            # Ship the remaining budget and derive the socket budget from
            # it: never wait longer than the request can still use.
            payload["deadline_ms"] = deadline_ms
            timeout = min(
                self.timeout,
                deadline_ms / 1000.0 + self.DEADLINE_GRACE_SECONDS,
            )
        document = self._post(
            "expand", payload, timeout=timeout, deadline_ms=deadline_ms
        )
        span_doc = document.get("trace")
        if span_doc is not None:
            # Stamp where the span came from; everything else in the
            # dict is the remote worker's own account of itself.
            span_doc.setdefault("attrs", {})["remote"] = self.base_url
        epoch = document.get("epoch")
        return ExpandResult(
            reached=tuple(document["reached"]),
            crossings={
                int(owner): tuple(targets)
                for owner, targets in document["crossings"].items()
            },
            expanded=int(document["expanded"]),
            span=span_doc,
            epoch=int(epoch) if epoch is not None else None,
        )

    def local_query(self, query: LSCRQuery) -> bool:
        document = self._post(
            "query",
            {
                "source": str(query.source),
                "target": str(query.target),
                "labels": sorted(query.labels.labels),
                "constraint": query.constraint.to_sparql(),
                # Mirror ShardWorker.local_query: caching belongs to the
                # owning service, not the worker.
                "use_cache": False,
            },
        )
        return bool(document["answer"])

    def probe(self, timeout: float | None = None) -> dict:
        """``GET /shard/<id>``: the worker's descriptor (handshake/health)."""
        status, data = self._request(
            "GET", self._shard_path(), timeout=timeout
        )
        return self._decode(status, data)

    def prepare_update(
        self,
        txn: str,
        *,
        epoch: int,
        fingerprint: str,
        plan_hash: str | None = None,
        slice_document: dict | None = None,
    ) -> dict:
        payload: dict = {
            "phase": "prepare",
            "txn": txn,
            "wire_version": SLICE_WIRE_VERSION,
            "epoch": epoch,
            "fingerprint": fingerprint,
        }
        if plan_hash is not None:
            payload["plan_hash"] = plan_hash
        if slice_document is not None:
            payload["slice"] = slice_document
        return self._post("update", payload)

    def publish_update(self, txn: str) -> dict:
        return self._post(
            "update",
            {"phase": "publish", "txn": txn, "wire_version": SLICE_WIRE_VERSION},
        )

    def abort_update(self, txn: str) -> dict:
        return self._post(
            "update",
            {"phase": "abort", "txn": txn, "wire_version": SLICE_WIRE_VERSION},
        )

    def describe(self) -> dict:
        return {
            "shard": self.shard_id,
            "remote": self.base_url,
            **self._pool.stats(),
        }

    def close(self) -> None:
        """Drop the pooled connections."""
        self._pool.close()
