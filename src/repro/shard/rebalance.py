"""D-guided shard rebalancing from observed border crossings.

A shard plan is chosen before any query runs, from the *structural*
region-correlation table ``D`` — how many label-constrained paths the
index saw between regions.  Live traffic is the ground truth the static
table approximates: every scatter-gather round the workers count, per
peer shard, how many frontier vertices they handed across the border
(:meth:`~repro.shard.worker.ShardWorker.crossings_by_peer`).  Crossings
are the only thing a round pays for — each one is a vertex that must be
shipped to another worker and expanded there — so a placement that
moves crossing-heavy region groups onto the same shard converts remote
rounds into slice-local CSR walks.

:func:`propose_rebalance` is the pure half: fold the observed
shard-to-shard crossing matrix back into ``D`` as extra affinity
between the region groups on crossing-heavy shard pairs, re-run the
same deterministic placement loop (:func:`~repro.shard.partitioner
.assign_regions`), and return a new :class:`~repro.shard.partitioner
.ShardPlan` — or ``None`` when the observed traffic does not move any
region (the common steady state, and the guarantee that makes the
admin endpoint idempotent).  Applying a proposal is the service's job
(:meth:`~repro.shard.service.ShardedQueryService.rebalance`): it pushes
the re-cut slices through the same two-phase prepare/publish wire a
live update uses, at a bumped slice epoch.
"""

from __future__ import annotations

from repro.index.landmarks import NO_REGION, Partition
from repro.shard.partitioner import ShardPlan, assign_regions

__all__ = ["propose_rebalance", "plan_for_assignment", "fold_crossings"]


def fold_crossings(
    correlations: dict[int, dict[int, int]] | None,
    plan: ShardPlan,
    crossings: dict[int, dict[int, int]],
) -> dict[int, dict[int, int]]:
    """Fold a shard-level crossing matrix into region-level ``D``.

    ``crossings[a][b]`` vertices crossed from shard ``a`` to shard
    ``b``; the static table has no row resolution below a region, so
    each shard pair's weight is spread evenly over its region pairs
    (rounded up — a nonzero observation must never vanish to zero
    boost, or a 1-region shard pair could not attract at all).  Returns
    a new table; the input is not mutated.
    """
    boosted: dict[int, dict[int, int]] = {
        u: dict(row) for u, row in (correlations or {}).items()
    }
    for source_shard, row in crossings.items():
        if not 0 <= source_shard < plan.num_shards:
            continue
        source_regions = plan.regions_by_shard[source_shard]
        if not source_regions:
            continue
        for target_shard, weight in row.items():
            if weight <= 0 or not 0 <= target_shard < plan.num_shards:
                continue
            target_regions = plan.regions_by_shard[target_shard]
            if not target_regions or target_shard == source_shard:
                continue
            pairs = len(source_regions) * len(target_regions)
            bonus = -(-int(weight) // pairs)  # ceil division
            for u in source_regions:
                target_row = boosted.setdefault(u, {})
                for v in target_regions:
                    target_row[v] = target_row.get(v, 0) + bonus
    return boosted


def plan_for_assignment(
    partition: Partition,
    assignment: dict[int, int],
    num_shards: int,
    num_vertices: int,
) -> ShardPlan:
    """Materialise a region → shard assignment as a full vertex plan.

    Mirrors :func:`~repro.shard.partitioner.build_shard_plan` but sized
    to ``num_vertices``, which may exceed the partition (vertices
    interned by live updates have no landmark region and keep the same
    deterministic ``vid % num_shards`` owners they were dealt at update
    time — a rebalance never moves them, so only region membership ever
    changes ownership).
    """
    region = partition.region
    shard_of: list[int] = []
    for vid in range(num_vertices):
        r = region[vid] if vid < len(region) else NO_REGION
        if r == NO_REGION:
            shard_of.append(vid % num_shards)
        else:
            shard_of.append(assignment[r])
    regions_by_shard: list[list[int]] = [[] for _ in range(num_shards)]
    for landmark, shard_id in assignment.items():
        regions_by_shard[shard_id].append(landmark)
    return ShardPlan(
        num_shards=num_shards,
        shard_of=tuple(shard_of),
        regions_by_shard=tuple(
            tuple(sorted(group)) for group in regions_by_shard
        ),
        region_shard=assignment,
    )


def propose_rebalance(
    partition: Partition,
    plan: ShardPlan,
    correlations: dict[int, dict[int, int]] | None,
    crossings: dict[int, dict[int, int]],
    *,
    num_vertices: int,
    min_crossings: int = 1,
) -> ShardPlan | None:
    """A better plan under observed traffic, or ``None`` to stand pat.

    Pure and deterministic: same partition, plan, ``D`` and counters →
    same proposal.  Returns ``None`` when there is structurally nothing
    to move (one shard), too little evidence (fewer than
    ``min_crossings`` total observed crossings), or when the boosted
    placement reproduces the current assignment — so callers can poll
    it harmlessly.
    """
    if plan.num_shards < 2:
        return None
    observed = sum(
        weight
        for source_shard, row in crossings.items()
        for target_shard, weight in row.items()
        if target_shard != source_shard and weight > 0
    )
    if observed < max(1, min_crossings):
        return None
    boosted = fold_crossings(correlations, plan, crossings)
    assignment = assign_regions(partition, plan.num_shards, boosted)
    if assignment == plan.region_shard:
        return None
    proposal = plan_for_assignment(
        partition, assignment, plan.num_shards, num_vertices
    )
    if proposal.shard_of == plan.shard_of:
        return None
    return proposal
