"""The scatter-gather coordinator: exact LSCR answers over shard slices.

The coordinator composes shard-local closures into the global answer
with the naive two-procedure decomposition (Section 3), which is the
obviously-correct frame for a distributed search:

1. **Phase one** — the label-constrained closure of the source, computed
   by rounds of scatter-gather: the frontier is scattered to the shards
   owning its vertices, each shard returns its local closure plus its
   border crossings, and crossings seed the next round.  Because every
   edge lives in exactly one slice (keyed by its source's owner), the
   fixpoint of this loop *is* ``{v : s ⇝_L v}`` — queries whose
   traversal never crosses a border are answered entirely by the
   source's shard, which is the "expand to correlated regions only when
   border crossings are possible" routing rule falling out of the
   algorithm rather than being bolted on;
2. **Intersect** with ``V(S, G)`` (computed once, coordinator-side,
   through the shared :class:`~repro.service.cache.CandidateCache`);
3. **Phase two** — a second scatter-gather closure seeded by every
   satisfying vertex reached, stopping the moment the target appears.

Before any of that, a **co-located fast path**: when source and target
live on the same shard, that shard's per-slice
:class:`~repro.service.app.QueryService` gets first crack — a true
answer from a slice is globally true (edge-subset monotonicity), and on
region-partitioned graphs most traffic is intra-region.

The coordinator quacks like an :class:`~repro.session.LSCRSession`
(``answer(query) -> QueryResult``), which is how
:class:`~repro.shard.service.ShardedQueryService` plugs it into the
planner → cache → execute pipeline unchanged.  Rounds scatter to
workers concurrently on a small pool when more than one shard holds
frontier vertices.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass
from time import perf_counter

from repro.core.query import LSCRQuery
from repro.core.result import QueryResult
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    ShardUnavailableError,
)
from repro.graph.labeled_graph import KnowledgeGraph
from repro.obs.trace import current_trace, span
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import current_deadline
from repro.resilience.retry import RetryPolicy
from repro.service.cache import CandidateCache
from repro.shard.partitioner import ShardPlan

__all__ = ["ShardCoordinator"]

#: Algorithm name stamped on coordinator-answered results.
SHARDED_ALGORITHM = "sharded"

#: Slack added to deadline-derived waits on worker futures, so a worker
#: that checks its own deadline gets to answer with a structured 504
#: before the coordinator abandons the call.  This is the "one round's
#: grace" by which a query may overshoot its budget.
ROUND_GRACE_SECONDS = 0.05


@dataclass(frozen=True)
class _Topology:
    """The coordinator facts that must swap together on a slice publish.

    Reading graph, plan and slice epoch through one immutable bundle is
    what makes a mid-query :meth:`ShardCoordinator.publish` safe: a
    query evaluates wholly against the topology it grabbed at entry —
    never the old plan with the new epoch or vice versa.
    """

    graph: KnowledgeGraph
    plan: ShardPlan
    slice_epoch: int


class _EpochSkew(Exception):
    """A worker answered an expand at a different slice epoch (internal).

    Raised from :meth:`ShardCoordinator.closure` when an echoed epoch
    disagrees with the topology the query grabbed — a slice swap landed
    mid-scatter.  Mixing rounds from two epochs could answer wrongly
    under *both*, so the whole query re-runs once against the new
    topology; the coordinator converts a second skew into a structured
    503 rather than loop.
    """

    def __init__(self, shard: int, saw: int, expected: int):
        super().__init__(
            f"shard {shard} answered at slice epoch {saw}, expected {expected}"
        )
        self.shard = shard
        self.saw = saw
        self.expected = expected


class ShardCoordinator:
    """Scatter-gather execution over a fixed set of shard workers.

    ``workers[i]`` must serve shard ``i`` of ``plan`` and expose the
    :class:`~repro.shard.worker.ShardWorker` surface (``expand``,
    ``local_query``) — in-process workers and
    :class:`~repro.shard.worker.HttpShardWorker` stubs mix freely.
    Thread-safe: per-query state is local to each :meth:`answer` call.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        plan: ShardPlan,
        workers: list,
        *,
        candidate_cache: CandidateCache | None = None,
        local_fast_path: bool = True,
        parallel: bool = True,
        retry_policy: RetryPolicy | None = None,
        breakers: list[CircuitBreaker] | None = None,
        degraded_answers: bool = False,
        scatter_timeout: float | None = None,
        slice_epoch: int = 0,
    ) -> None:
        if len(workers) != plan.num_shards:
            raise ValueError(
                f"plan wants {plan.num_shards} workers, got {len(workers)}"
            )
        self._topology = _Topology(graph, plan, slice_epoch)
        self.workers = workers
        self.candidates = candidate_cache
        self.local_fast_path = local_fast_path
        #: Retries for idempotent expand calls (injectable for tests).
        self.retry = retry_policy if retry_policy is not None else RetryPolicy()
        #: One breaker per worker; injectable to tune thresholds/clock.
        self.breakers = (
            breakers
            if breakers is not None
            else [CircuitBreaker() for _ in workers]
        )
        if len(self.breakers) != plan.num_shards:
            raise ValueError(
                f"plan wants {plan.num_shards} breakers, got {len(self.breakers)}"
            )
        #: Degrade (answer over surviving shards, verdict "unknown" when
        #: False) instead of failing fast with a structured 503.
        self.degraded_answers = degraded_answers
        #: Per-call wall-clock bound on worker expands even without a
        #: request deadline (``serve --shard-timeout``).
        self.scatter_timeout = scatter_timeout
        self._parallel = bool(parallel and plan.num_shards > 1)
        self._pool = (
            ThreadPoolExecutor(
                max_workers=min(plan.num_shards, 8),
                thread_name_prefix="repro-shard",
            )
            if self._parallel
            else None
        )
        self._lock = threading.Lock()
        self._queries = 0
        self._rounds = 0
        self._expand_calls = 0
        self._crossings = 0
        self._fast_path_hits = 0
        # Resilience counters (all monotone, surfaced in /stats and
        # /metrics as repro_resilience_* series).
        self._scatter_serial_fallbacks = 0
        self._retries = 0
        self._worker_failures = 0
        self._breaker_rejections = 0
        self._degraded_answers = 0
        self._deadline_exceeded = 0
        self._fast_path_errors = 0
        self._epoch_skew_retries = 0

    # ------------------------------------------------------------------
    # topology views + the publish seam of slice-epoch propagation
    # ------------------------------------------------------------------

    @property
    def graph(self) -> KnowledgeGraph:
        return self._topology.graph

    @property
    def plan(self) -> ShardPlan:
        return self._topology.plan

    @property
    def slice_epoch(self) -> int:
        """The slice epoch this coordinator expects workers to echo."""
        return self._topology.slice_epoch

    def publish(
        self, graph: KnowledgeGraph, plan: ShardPlan, slice_epoch: int
    ) -> None:
        """Swap in a new topology (after an update push or a rebalance).

        One atomic reference store; in-flight queries keep the bundle
        they grabbed and the epoch-skew check handles any that straddle
        the swap.  The worker list itself is fixed — workers receive
        their new slices through the two-phase update wire, not here.
        """
        if plan.num_shards != len(self.workers):
            raise ValueError(
                f"cannot publish a {plan.num_shards}-shard plan over "
                f"{len(self.workers)} workers"
            )
        self._topology = _Topology(graph, plan, slice_epoch)

    def __repr__(self) -> str:
        topology = self._topology
        return (
            f"ShardCoordinator({topology.graph.name!r}, "
            f"shards={topology.plan.num_shards}, "
            f"epoch={topology.slice_epoch})"
        )

    # ------------------------------------------------------------------
    # session-compatible execution
    # ------------------------------------------------------------------

    def answer(self, query: LSCRQuery) -> QueryResult:
        """Answer one prepared query; exact, with full telemetry.

        Traced requests see the whole scatter-gather as a
        ``coordinator`` span: the fast-path probe, the ``V(S, G)``
        lookup, and one ``round`` span per frontier exchange (phase,
        frontier size, shards hit, crossings) with each worker's own
        ``expand`` span — local or shipped back over the wire — stitched
        underneath.
        """
        with span("coordinator", shards=self.plan.num_shards) as handle:
            try:
                return self._answer(query, handle)
            except _EpochSkew as skew:
                # A slice swap landed mid-scatter: every visited vertex
                # so far was proven against the *old* epoch, so the only
                # sound move is to re-run the whole query against the
                # new topology.  Once — a second skew during the retry
                # means swaps are outpacing queries; refuse structurally
                # (503, retryable) rather than loop.
                with self._lock:
                    self._epoch_skew_retries += 1
                handle.set(epoch_skew_retry=True)
                try:
                    return self._answer(query, handle)
                except _EpochSkew as again:
                    raise ShardUnavailableError(
                        again.shard,
                        "slice epoch changed mid-query twice",
                        detail={
                            "saw_epoch": again.saw,
                            "expected_epoch": again.expected,
                        },
                    ) from None

    def _answer(self, query: LSCRQuery, handle) -> QueryResult:
        started = perf_counter()
        topology = self._topology
        graph = topology.graph
        source = graph.vid(query.source)
        target = graph.vid(query.target)
        mask = query.labels.mask_for(graph)

        shard_of = topology.plan.shard_of
        deadline = current_deadline()
        #: Shards that stayed down past the retry budget this query
        #: (shared across both phases; only populated under
        #: ``degraded_answers`` — fail-fast raises instead).
        missing: set[int] = set()
        fast_hit = False
        verdict: bool | None = None
        passed = 0
        vsg_size = -1  # QueryResult's "not computed" convention
        vsg_seconds = 0.0
        telemetry = {"rounds": 0, "expand_calls": 0, "crossings": 0}

        if self.local_fast_path and shard_of[source] == shard_of[target]:
            shard = shard_of[source]
            breaker = self.breakers[shard]
            if breaker.allow():
                with span("co-located", shard=shard) as probe:
                    try:
                        fast_hit = self._bounded_call(
                            lambda: self.workers[shard].local_query(query),
                            deadline,
                            shard=shard,
                        )
                    except DeadlineExceededError:
                        breaker.record_failure()
                        with self._lock:
                            self._deadline_exceeded += 1
                        raise
                    except Exception:
                        # A failed probe is just a miss: scatter-gather
                        # (with its own retry/breaker guards) decides.
                        breaker.record_failure()
                        with self._lock:
                            self._fast_path_errors += 1
                        fast_hit = False
                    else:
                        breaker.record_success()
                    probe.set(hit=fast_hit)
            if fast_hit:
                verdict = True
                handle.set(source="co-located")
        if verdict is None:
            # The global V(S, G) is only needed when the fast path did
            # not decide — computing it first would charge every
            # co-located hit for a whole-graph SPARQL evaluation.
            vsg_started = perf_counter()
            if self.candidates is not None:
                candidates = self.candidates.get(query.constraint, graph)
            else:
                with span("candidate-cache") as vsg_span:
                    candidates = tuple(
                        query.constraint.satisfying_vertices(graph)
                    )
                    vsg_span.set(hit=False, candidates=len(candidates))
            vsg_seconds = perf_counter() - vsg_started
            vsg_size = len(candidates)
            candidate_set = set(candidates)
        if verdict is None and not candidate_set:
            verdict = False  # no satisfying vertex anywhere: skip both phases
        if verdict is None:
            reachable, phase_one = self.closure(
                {source}, mask, phase="phase1",
                deadline=deadline, missing=missing, topology=topology,
            )
            for key in telemetry:
                telemetry[key] += phase_one[key]
            passed = len(reachable)
            satisfying = reachable & candidate_set
            if not satisfying or target not in reachable:
                # No reached candidate, or the target is unreachable
                # outright (closure(satisfying) ⊆ closure(source), so
                # phase two could never find it).
                verdict = False
            elif target in satisfying:
                # The satisfying vertex may be the target itself (the
                # trivial tail path), or any reached candidate when the
                # target is among them.
                verdict = True
            else:
                second, phase_two = self.closure(
                    satisfying, mask, stop=target, phase="phase2",
                    deadline=deadline, missing=missing, topology=topology,
                )
                for key in telemetry:
                    telemetry[key] += phase_two[key]
                # Phase two revisits no new vertex: closure(satisfying)
                # ⊆ closure(source), so the distinct passed count (the
                # paper's metric) is the phase-one closure alone.
                verdict = target in second

        # Degradation marker: any shard dropped mid-closure means the
        # answer was computed over an edge subset.  True is still proven
        # (every visited vertex was genuinely reached); False only means
        # the surviving slices hold no witness — "unknown".
        degraded: dict | None = None
        if missing:
            degraded = {
                "missing_shards": sorted(missing),
                "verdict": "reachable" if verdict else "unknown",
            }
        handle.set(
            answer=verdict,
            rounds=telemetry["rounds"],
            expand_calls=telemetry["expand_calls"],
            crossings=telemetry["crossings"],
            vsg_size=vsg_size,
        )
        if degraded is not None:
            handle.set(degraded=degraded)

        with self._lock:
            self._queries += 1
            self._rounds += telemetry["rounds"]
            self._expand_calls += telemetry["expand_calls"]
            self._crossings += telemetry["crossings"]
            if fast_hit:
                self._fast_path_hits += 1
            if degraded is not None:
                self._degraded_answers += 1
        return QueryResult(
            answer=verdict,
            algorithm=SHARDED_ALGORITHM,
            seconds=perf_counter() - started,
            passed_vertices=passed,
            vsg_size=vsg_size,
            vsg_seconds=vsg_seconds,
            degraded=degraded,
        )

    # ------------------------------------------------------------------
    # the distributed closure
    # ------------------------------------------------------------------

    def closure(
        self,
        seeds: set[int],
        mask: int,
        stop: int | None = None,
        phase: str = "closure",
        deadline=None,
        missing: set[int] | None = None,
        topology: _Topology | None = None,
    ) -> tuple[set[int], dict[str, int]]:
        """All vertices reachable from ``seeds`` under ``mask``.

        Multi-round frontier exchange; with ``stop`` set the loop exits
        as soon as that vertex is reached (the returned set is then a
        prefix of the closure that provably contains ``stop``).

        ``deadline`` bounds every round (checked at the top of the loop,
        and each worker wait derives from the remaining budget);
        ``missing`` collects shards that stayed down past the retry
        budget — their frontier seeds are dropped, which is what makes
        the result a closure over the *surviving* slices.  Without
        ``degraded_answers`` a down shard raises
        :class:`~repro.exceptions.ShardUnavailableError` instead.

        Soundness of the degraded set: a vertex enters ``visited`` only
        as a seed or as a reported reach/crossing of an executed expand,
        so every member is genuinely reachable even when some expansions
        were dropped — the set is a *subset* of the true closure.

        When a trace is active, each round becomes a ``round`` span
        labelled with ``phase`` and its frontier size, parenting the
        workers' ``expand`` spans — which the workers built by value
        (the scatter pool's threads, and remote processes, don't share
        the request context).

        ``topology`` is the bundle the enclosing query grabbed at entry
        (defaulting to the current one for direct callers); any worker
        echoing a *different* slice epoch aborts the closure with
        :class:`_EpochSkew`, because a closure mixing two epochs can be
        wrong under both.
        """
        if topology is None:
            topology = self._topology
        shard_of = topology.plan.shard_of
        expected_epoch = topology.slice_epoch
        if missing is None:
            missing = set()
        visited: set[int] = set()
        frontier: dict[int, list[int]] = {}
        for vid in seeds:
            if vid in visited:
                continue
            visited.add(vid)
            frontier.setdefault(shard_of[vid], []).append(vid)
        expanded_by_shard: dict[int, set[int]] = {}
        telemetry = {"rounds": 0, "expand_calls": 0, "crossings": 0}
        trace = current_trace()
        trace_id = trace.trace_id if trace is not None else None
        while frontier:
            if deadline is not None and deadline.expired():
                with self._lock:
                    self._deadline_exceeded += 1
                raise DeadlineExceededError(
                    "coordinator-round",
                    elapsed_ms=deadline.elapsed_ms(),
                    budget_ms=deadline.budget_ms,
                    partial={
                        "phase": phase,
                        "rounds": telemetry["rounds"],
                        "visited": len(visited),
                    },
                )
            if missing:
                # Seeds owned by shards already declared dead cannot be
                # expanded; drop them (their membership in `visited` is
                # still sound — reaching them was proven upstream).
                for shard_id in list(frontier):
                    if shard_id in missing:
                        del frontier[shard_id]
                if not frontier:
                    break
            telemetry["rounds"] += 1
            telemetry["expand_calls"] += len(frontier)
            with span(
                "round",
                phase=phase,
                index=telemetry["rounds"],
                frontier_size=sum(len(seeds) for seeds in frontier.values()),
                shards=len(frontier),
            ) as round_span:
                results, failures = self._scatter(
                    frontier, mask, expanded_by_shard, trace_id, deadline
                )
                for shard_id, reason in failures:
                    if not self.degraded_answers:
                        raise ShardUnavailableError(
                            shard_id,
                            reason,
                            detail={
                                "phase": phase,
                                "breaker": self.breakers[shard_id].stats()[
                                    "state"
                                ],
                            },
                        )
                    missing.add(shard_id)
                if failures:
                    round_span.set(
                        failed_shards=sorted(shard for shard, _ in failures)
                    )
                next_frontier: dict[int, list[int]] = {}
                round_crossings = 0
                for shard_id, result in results:
                    if (
                        result.epoch is not None
                        and result.epoch != expected_epoch
                    ):
                        raise _EpochSkew(shard_id, result.epoch, expected_epoch)
                    round_span.attach(result.span)
                    expanded_by_shard.setdefault(shard_id, set()).update(
                        result.reached
                    )
                    visited.update(result.reached)
                    for owner, targets in result.crossings.items():
                        for vid in targets:
                            if vid not in visited:
                                visited.add(vid)
                                next_frontier.setdefault(owner, []).append(vid)
                                round_crossings += 1
                telemetry["crossings"] += round_crossings
                round_span.set(crossings=round_crossings)
            if stop is not None and stop in visited:
                break
            frontier = next_frontier
        return visited, telemetry

    def _scatter(
        self,
        frontier: dict[int, list[int]],
        mask: int,
        expanded_by_shard: dict[int, set[int]],
        trace_id: str | None = None,
        deadline=None,
    ):
        """One round's expand calls, concurrent when shards allow.

        Returns ``(results, failures)``: per-shard
        :class:`~repro.shard.worker.ExpandResult` objects, plus the
        shards whose call failed past the retry budget (exhausted
        retries, breaker-open rejection, or a hang abandoned at the
        deadline/``scatter_timeout``) with a human-readable reason.
        Deadline expiry is *not* a shard failure — it raises
        :class:`~repro.exceptions.DeadlineExceededError` directly.

        ``trace_id`` (when the request is traced) rides along to each
        worker — as a plain value, because pool threads and remote
        processes can't see the request's context variables — and comes
        back as :attr:`~repro.shard.worker.ExpandResult.span`.  Untraced
        requests without a deadline call the bare three-argument
        ``expand``, so worker stand-ins that predate tracing keep
        working.

        Single-shard rounds also go through the pool whenever a wait
        bound exists: a hung call cannot be interrupted in-process, so
        bounding it means waiting on a future and abandoning the thread
        (the breaker keeps abandoned threads from piling up).
        """
        items = sorted(frontier.items())
        # Snapshot the pool once: close() may null it under a straggler
        # query, and the registry contract says in-flight requests
        # holding a removed service still finish.
        pool = self._pool
        results: list[tuple[int, object]] = []
        failures: list[tuple[int, str]] = []
        bounded = deadline is not None or self.scatter_timeout is not None
        submitted: list = []
        pending = items
        if pool is not None and (len(items) > 1 or bounded):
            for shard_id, seeds in items:
                flag = {"abandoned": False}
                try:
                    future = pool.submit(
                        self._guarded_expand,
                        shard_id,
                        seeds,
                        mask,
                        tuple(expanded_by_shard.get(shard_id, ())),
                        trace_id,
                        deadline,
                        flag,
                    )
                except RuntimeError:
                    # Pool shut down mid-query (close() racing a
                    # straggler): the rest of the round runs serially.
                    with self._lock:
                        self._scatter_serial_fallbacks += 1
                    break
                submitted.append((shard_id, future, flag))
            pending = items[len(submitted):]
        elif pool is None and self._parallel:
            # Configured parallel but the pool is gone (close() raced a
            # straggler query): the whole round runs serially.
            with self._lock:
                self._scatter_serial_fallbacks += 1

        for shard_id, future, flag in submitted:
            wait = self._scatter_wait(deadline)
            try:
                result = future.result(timeout=wait)
            except FuturesTimeout:
                # The call is still running and cannot be interrupted;
                # abandon it (the flag stops its late breaker updates).
                flag["abandoned"] = True
                self.breakers[shard_id].record_failure()
                if deadline is not None and deadline.expired():
                    with self._lock:
                        self._deadline_exceeded += 1
                    raise DeadlineExceededError(
                        "scatter-wait",
                        elapsed_ms=deadline.elapsed_ms(),
                        budget_ms=deadline.budget_ms,
                        partial={"shard": shard_id},
                    ) from None
                with self._lock:
                    self._worker_failures += 1
                failures.append(
                    (shard_id, f"no response within {wait:.3f}s")
                )
            except CircuitOpenError as error:
                failures.append((shard_id, str(error)))
            except DeadlineExceededError:
                with self._lock:
                    self._deadline_exceeded += 1
                raise
            except Exception as error:
                with self._lock:
                    self._worker_failures += 1
                failures.append(
                    (shard_id, f"{type(error).__name__}: {error}")
                )
            else:
                results.append((shard_id, result))

        for shard_id, seeds in pending:
            try:
                result = self._guarded_expand(
                    shard_id,
                    seeds,
                    mask,
                    tuple(expanded_by_shard.get(shard_id, ())),
                    trace_id,
                    deadline,
                    {"abandoned": False},
                )
            except CircuitOpenError as error:
                failures.append((shard_id, str(error)))
            except DeadlineExceededError:
                with self._lock:
                    self._deadline_exceeded += 1
                raise
            except Exception as error:
                with self._lock:
                    self._worker_failures += 1
                failures.append(
                    (shard_id, f"{type(error).__name__}: {error}")
                )
            else:
                results.append((shard_id, result))
        return results, failures

    # ------------------------------------------------------------------
    # guarded worker calls (retry + breaker + deadline)
    # ------------------------------------------------------------------

    def _scatter_wait(self, deadline) -> float | None:
        """Wall-clock bound for one worker future, or None (unbounded)."""
        waits = []
        if deadline is not None:
            waits.append(
                max(0.0, deadline.remaining_seconds()) + ROUND_GRACE_SECONDS
            )
        if self.scatter_timeout is not None:
            waits.append(self.scatter_timeout)
        return min(waits) if waits else None

    def _guarded_expand(
        self, shard_id, seeds, mask, exclude, trace_id, deadline, flag
    ):
        """One shard call behind its breaker and the retry policy.

        Runs on a scatter-pool thread (or inline on the serial path);
        ``deadline`` travels as a plain value because pool threads don't
        inherit the request's ContextVars.  ``flag["abandoned"]`` is set
        by the gather loop when it stops waiting, muting this call's
        late breaker updates.
        """
        breaker = self.breakers[shard_id]
        if not breaker.allow():
            with self._lock:
                self._breaker_rejections += 1
            raise CircuitOpenError(shard_id, breaker.state)

        def record_attempt_failure(error: BaseException) -> None:
            if not flag["abandoned"]:
                breaker.record_failure()

        try:
            result = self.retry.call(
                lambda: self._expand_once(
                    shard_id, seeds, mask, exclude, trace_id, deadline
                ),
                deadline=deadline,
                on_retry=self._note_retry,
                on_failure=record_attempt_failure,
            )
        except DeadlineExceededError:
            # The worker answered (with a structured 504) or the budget
            # died before the call: the worker itself is responsive.
            if not flag["abandoned"]:
                breaker.record_success()
            raise
        else:
            if not flag["abandoned"]:
                breaker.record_success()
            return result

    def _expand_once(self, shard_id, seeds, mask, exclude, trace_id, deadline):
        """One bare expand call, shipping the remaining budget when set."""
        worker = self.workers[shard_id]
        if deadline is not None:
            remaining = deadline.remaining_ms()
            if remaining <= 0:
                raise DeadlineExceededError(
                    "scatter",
                    elapsed_ms=deadline.elapsed_ms(),
                    budget_ms=deadline.budget_ms,
                    partial={"shard": shard_id},
                )
            return worker.expand(
                seeds, mask, exclude, trace_id, deadline_ms=remaining
            )
        if trace_id is not None:
            return worker.expand(seeds, mask, exclude, trace_id)
        return worker.expand(seeds, mask, exclude)

    def _note_retry(self, attempt: int, error: BaseException) -> None:
        with self._lock:
            self._retries += 1

    def _bounded_call(self, fn, deadline, *, shard: int):
        """Run ``fn`` bounded by the deadline via the scatter pool.

        Without a deadline (or without a pool) the call runs inline —
        unbounded, exactly as before.  A hang is abandoned at expiry
        with a structured 504; the thread itself cannot be interrupted.
        """
        pool = self._pool
        if deadline is None or pool is None:
            return fn()
        try:
            future = pool.submit(fn)
        except RuntimeError:
            return fn()  # pool shut down mid-query
        wait = max(0.0, deadline.remaining_seconds()) + ROUND_GRACE_SECONDS
        try:
            return future.result(timeout=wait)
        except FuturesTimeout:
            raise DeadlineExceededError(
                "co-located-probe",
                elapsed_ms=deadline.elapsed_ms(),
                budget_ms=deadline.budget_ms,
                partial={"shard": shard},
            ) from None

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """JSON-ready coordinator counters for ``/stats``."""
        with self._lock:
            queries = self._queries
            document = {
                "queries": queries,
                "fast_path_hits": self._fast_path_hits,
                "rounds_total": self._rounds,
                "expand_calls_total": self._expand_calls,
                "crossings_total": self._crossings,
                "mean_rounds": self._rounds / queries if queries else 0.0,
                "scatter_serial_fallbacks": self._scatter_serial_fallbacks,
                "slice_epoch": self._topology.slice_epoch,
                "epoch_skew_retries": self._epoch_skew_retries,
            }
            resilience = {
                "retries": self._retries,
                "worker_failures": self._worker_failures,
                "breaker_rejections": self._breaker_rejections,
                "degraded_answers": self._degraded_answers,
                "deadline_exceeded": self._deadline_exceeded,
                "fast_path_errors": self._fast_path_errors,
                "degraded_mode": self.degraded_answers,
                "scatter_timeout": self.scatter_timeout,
            }
        resilience["breakers"] = {
            str(shard_id): breaker.stats()
            for shard_id, breaker in enumerate(self.breakers)
        }
        document["resilience"] = resilience
        return document

    def close(self) -> None:
        """Shut the scatter pool down (idempotent)."""
        pool = self._pool
        if pool is not None:
            pool.shutdown(wait=True)
            self._pool = None
