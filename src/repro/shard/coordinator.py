"""The scatter-gather coordinator: exact LSCR answers over shard slices.

The coordinator composes shard-local closures into the global answer
with the naive two-procedure decomposition (Section 3), which is the
obviously-correct frame for a distributed search:

1. **Phase one** — the label-constrained closure of the source, computed
   by rounds of scatter-gather: the frontier is scattered to the shards
   owning its vertices, each shard returns its local closure plus its
   border crossings, and crossings seed the next round.  Because every
   edge lives in exactly one slice (keyed by its source's owner), the
   fixpoint of this loop *is* ``{v : s ⇝_L v}`` — queries whose
   traversal never crosses a border are answered entirely by the
   source's shard, which is the "expand to correlated regions only when
   border crossings are possible" routing rule falling out of the
   algorithm rather than being bolted on;
2. **Intersect** with ``V(S, G)`` (computed once, coordinator-side,
   through the shared :class:`~repro.service.cache.CandidateCache`);
3. **Phase two** — a second scatter-gather closure seeded by every
   satisfying vertex reached, stopping the moment the target appears.

Before any of that, a **co-located fast path**: when source and target
live on the same shard, that shard's per-slice
:class:`~repro.service.app.QueryService` gets first crack — a true
answer from a slice is globally true (edge-subset monotonicity), and on
region-partitioned graphs most traffic is intra-region.

The coordinator quacks like an :class:`~repro.session.LSCRSession`
(``answer(query) -> QueryResult``), which is how
:class:`~repro.shard.service.ShardedQueryService` plugs it into the
planner → cache → execute pipeline unchanged.  Rounds scatter to
workers concurrently on a small pool when more than one shard holds
frontier vertices.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

from repro.core.query import LSCRQuery
from repro.core.result import QueryResult
from repro.graph.labeled_graph import KnowledgeGraph
from repro.obs.trace import current_trace, span
from repro.service.cache import CandidateCache
from repro.shard.partitioner import ShardPlan

__all__ = ["ShardCoordinator"]

#: Algorithm name stamped on coordinator-answered results.
SHARDED_ALGORITHM = "sharded"


class ShardCoordinator:
    """Scatter-gather execution over a fixed set of shard workers.

    ``workers[i]`` must serve shard ``i`` of ``plan`` and expose the
    :class:`~repro.shard.worker.ShardWorker` surface (``expand``,
    ``local_query``) — in-process workers and
    :class:`~repro.shard.worker.HttpShardWorker` stubs mix freely.
    Thread-safe: per-query state is local to each :meth:`answer` call.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        plan: ShardPlan,
        workers: list,
        *,
        candidate_cache: CandidateCache | None = None,
        local_fast_path: bool = True,
        parallel: bool = True,
    ) -> None:
        if len(workers) != plan.num_shards:
            raise ValueError(
                f"plan wants {plan.num_shards} workers, got {len(workers)}"
            )
        self.graph = graph
        self.plan = plan
        self.workers = workers
        self.candidates = candidate_cache
        self.local_fast_path = local_fast_path
        self._pool = (
            ThreadPoolExecutor(
                max_workers=min(plan.num_shards, 8),
                thread_name_prefix="repro-shard",
            )
            if parallel and plan.num_shards > 1
            else None
        )
        self._lock = threading.Lock()
        self._queries = 0
        self._rounds = 0
        self._expand_calls = 0
        self._crossings = 0
        self._fast_path_hits = 0

    def __repr__(self) -> str:
        return (
            f"ShardCoordinator({self.graph.name!r}, "
            f"shards={self.plan.num_shards})"
        )

    # ------------------------------------------------------------------
    # session-compatible execution
    # ------------------------------------------------------------------

    def answer(self, query: LSCRQuery) -> QueryResult:
        """Answer one prepared query; exact, with full telemetry.

        Traced requests see the whole scatter-gather as a
        ``coordinator`` span: the fast-path probe, the ``V(S, G)``
        lookup, and one ``round`` span per frontier exchange (phase,
        frontier size, shards hit, crossings) with each worker's own
        ``expand`` span — local or shipped back over the wire — stitched
        underneath.
        """
        with span("coordinator", shards=self.plan.num_shards) as handle:
            return self._answer(query, handle)

    def _answer(self, query: LSCRQuery, handle) -> QueryResult:
        started = perf_counter()
        graph = self.graph
        source = graph.vid(query.source)
        target = graph.vid(query.target)
        mask = query.labels.mask_for(graph)

        shard_of = self.plan.shard_of
        fast_hit = False
        verdict: bool | None = None
        passed = 0
        vsg_size = -1  # QueryResult's "not computed" convention
        vsg_seconds = 0.0
        telemetry = {"rounds": 0, "expand_calls": 0, "crossings": 0}

        if self.local_fast_path and shard_of[source] == shard_of[target]:
            with span("co-located", shard=shard_of[source]) as probe:
                fast_hit = self.workers[shard_of[source]].local_query(query)
                probe.set(hit=fast_hit)
            if fast_hit:
                verdict = True
                handle.set(source="co-located")
        if verdict is None:
            # The global V(S, G) is only needed when the fast path did
            # not decide — computing it first would charge every
            # co-located hit for a whole-graph SPARQL evaluation.
            vsg_started = perf_counter()
            if self.candidates is not None:
                candidates = self.candidates.get(query.constraint, graph)
            else:
                with span("candidate-cache") as vsg_span:
                    candidates = tuple(
                        query.constraint.satisfying_vertices(graph)
                    )
                    vsg_span.set(hit=False, candidates=len(candidates))
            vsg_seconds = perf_counter() - vsg_started
            vsg_size = len(candidates)
            candidate_set = set(candidates)
        if verdict is None and not candidate_set:
            verdict = False  # no satisfying vertex anywhere: skip both phases
        if verdict is None:
            reachable, phase_one = self.closure({source}, mask, phase="phase1")
            for key in telemetry:
                telemetry[key] += phase_one[key]
            passed = len(reachable)
            satisfying = reachable & candidate_set
            if not satisfying or target not in reachable:
                # No reached candidate, or the target is unreachable
                # outright (closure(satisfying) ⊆ closure(source), so
                # phase two could never find it).
                verdict = False
            elif target in satisfying:
                # The satisfying vertex may be the target itself (the
                # trivial tail path), or any reached candidate when the
                # target is among them.
                verdict = True
            else:
                second, phase_two = self.closure(
                    satisfying, mask, stop=target, phase="phase2"
                )
                for key in telemetry:
                    telemetry[key] += phase_two[key]
                # Phase two revisits no new vertex: closure(satisfying)
                # ⊆ closure(source), so the distinct passed count (the
                # paper's metric) is the phase-one closure alone.
                verdict = target in second
        handle.set(
            answer=verdict,
            rounds=telemetry["rounds"],
            expand_calls=telemetry["expand_calls"],
            crossings=telemetry["crossings"],
            vsg_size=vsg_size,
        )

        with self._lock:
            self._queries += 1
            self._rounds += telemetry["rounds"]
            self._expand_calls += telemetry["expand_calls"]
            self._crossings += telemetry["crossings"]
            if fast_hit:
                self._fast_path_hits += 1
        return QueryResult(
            answer=verdict,
            algorithm=SHARDED_ALGORITHM,
            seconds=perf_counter() - started,
            passed_vertices=passed,
            vsg_size=vsg_size,
            vsg_seconds=vsg_seconds,
        )

    # ------------------------------------------------------------------
    # the distributed closure
    # ------------------------------------------------------------------

    def closure(
        self,
        seeds: set[int],
        mask: int,
        stop: int | None = None,
        phase: str = "closure",
    ) -> tuple[set[int], dict[str, int]]:
        """All vertices reachable from ``seeds`` under ``mask``.

        Multi-round frontier exchange; with ``stop`` set the loop exits
        as soon as that vertex is reached (the returned set is then a
        prefix of the closure that provably contains ``stop``).

        When a trace is active, each round becomes a ``round`` span
        labelled with ``phase`` and its frontier size, parenting the
        workers' ``expand`` spans — which the workers built by value
        (the scatter pool's threads, and remote processes, don't share
        the request context).
        """
        shard_of = self.plan.shard_of
        visited: set[int] = set()
        frontier: dict[int, list[int]] = {}
        for vid in seeds:
            if vid in visited:
                continue
            visited.add(vid)
            frontier.setdefault(shard_of[vid], []).append(vid)
        expanded_by_shard: dict[int, set[int]] = {}
        telemetry = {"rounds": 0, "expand_calls": 0, "crossings": 0}
        trace = current_trace()
        trace_id = trace.trace_id if trace is not None else None
        while frontier:
            telemetry["rounds"] += 1
            telemetry["expand_calls"] += len(frontier)
            with span(
                "round",
                phase=phase,
                index=telemetry["rounds"],
                frontier_size=sum(len(seeds) for seeds in frontier.values()),
                shards=len(frontier),
            ) as round_span:
                results = self._scatter(
                    frontier, mask, expanded_by_shard, trace_id
                )
                next_frontier: dict[int, list[int]] = {}
                round_crossings = 0
                for shard_id, result in results:
                    round_span.attach(result.span)
                    expanded_by_shard.setdefault(shard_id, set()).update(
                        result.reached
                    )
                    visited.update(result.reached)
                    for owner, targets in result.crossings.items():
                        for vid in targets:
                            if vid not in visited:
                                visited.add(vid)
                                next_frontier.setdefault(owner, []).append(vid)
                                round_crossings += 1
                telemetry["crossings"] += round_crossings
                round_span.set(crossings=round_crossings)
            if stop is not None and stop in visited:
                break
            frontier = next_frontier
        return visited, telemetry

    def _scatter(
        self,
        frontier: dict[int, list[int]],
        mask: int,
        expanded_by_shard: dict[int, set[int]],
        trace_id: str | None = None,
    ):
        """One round's expand calls, concurrent when shards allow.

        ``trace_id`` (when the request is traced) rides along to each
        worker — as a plain value, because pool threads and remote
        processes can't see the request's context variables — and comes
        back as :attr:`~repro.shard.worker.ExpandResult.span`.  Untraced
        requests call the bare three-argument ``expand``, so worker
        stand-ins that predate tracing keep working.
        """
        items = sorted(frontier.items())
        # Snapshot the pool once: close() may null it under a straggler
        # query, and the registry contract says in-flight requests
        # holding a removed service still finish.
        pool = self._pool
        if pool is not None and len(items) > 1:
            try:
                if trace_id is not None:
                    futures = [
                        (
                            shard_id,
                            pool.submit(
                                self.workers[shard_id].expand,
                                seeds,
                                mask,
                                tuple(expanded_by_shard.get(shard_id, ())),
                                trace_id,
                            ),
                        )
                        for shard_id, seeds in items
                    ]
                else:
                    futures = [
                        (
                            shard_id,
                            pool.submit(
                                self.workers[shard_id].expand,
                                seeds,
                                mask,
                                tuple(expanded_by_shard.get(shard_id, ())),
                            ),
                        )
                        for shard_id, seeds in items
                    ]
            except RuntimeError:
                pass  # pool shut down mid-query: fall through to serial
            else:
                return [
                    (shard_id, future.result()) for shard_id, future in futures
                ]
        if trace_id is not None:
            return [
                (
                    shard_id,
                    self.workers[shard_id].expand(
                        seeds,
                        mask,
                        expanded_by_shard.get(shard_id, ()),
                        trace_id,
                    ),
                )
                for shard_id, seeds in items
            ]
        return [
            (
                shard_id,
                self.workers[shard_id].expand(
                    seeds, mask, expanded_by_shard.get(shard_id, ())
                ),
            )
            for shard_id, seeds in items
        ]

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """JSON-ready coordinator counters for ``/stats``."""
        with self._lock:
            queries = self._queries
            return {
                "queries": queries,
                "fast_path_hits": self._fast_path_hits,
                "rounds_total": self._rounds,
                "expand_calls_total": self._expand_calls,
                "crossings_total": self._crossings,
                "mean_rounds": self._rounds / queries if queries else 0.0,
            }

    def close(self) -> None:
        """Shut the scatter pool down (idempotent)."""
        pool = self._pool
        if pool is not None:
            pool.shutdown(wait=True)
            self._pool = None
