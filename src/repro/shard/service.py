"""`ShardedQueryService` — a tenant whose execution engine is a fleet.

Subclasses :class:`~repro.service.app.QueryService`, so everything a
tenant needs — planner, canonical cache keys, result/constraint/
candidate caches, stats ledger, JSON handlers, snapshot persistence —
is inherited unchanged, and a sharded service registers in a
:class:`~repro.service.registry.TenantRegistry` exactly like a plain
one.  Only the execution seam differs: non-trivial, non-cached plans go
to the :class:`~repro.shard.coordinator.ShardCoordinator` instead of a
pooled session, unless the request *explicitly* named an algorithm
(``plan.forced``), in which case the classic single-process path runs —
the escape hatch that keeps every paper algorithm reachable on a
sharded deployment.

Construction: the region partition comes from the loaded local index
when there is one (its ``D`` table then guides shard placement); an
index-free service builds a fresh landmark partition and derives the
correlation table structurally
(:func:`~repro.index.landmarks.structural_correlations`).  Slices are
cut from the frozen CSR snapshot and served by in-process
:class:`~repro.shard.worker.ShardWorker`\\ s; attach the workers to an
HTTP server (``python -m repro serve --shards N``) and remote
coordinators can drive them via
:class:`~repro.shard.worker.HttpShardWorker` — the cross-host seam.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ServiceConfigError, UpdatesUnsupportedError
from repro.index.landmarks import (
    bfs_traverse,
    select_landmarks,
    structural_correlations,
)
from repro.index.local_index import LocalIndex
from repro.service.app import QueryService
from repro.service.epoch import GraphEpoch
from repro.service.planner import QueryPlan
from repro.service.stats import merge_snapshots
from repro.core.result import QueryResult
from repro.graph.labeled_graph import KnowledgeGraph
from repro.shard.coordinator import SHARDED_ALGORITHM, ShardCoordinator
from repro.shard.partitioner import build_shard_plan, cut_slices
from repro.shard.worker import ShardWorker

__all__ = ["ShardedQueryService"]


class ShardedQueryService(QueryService):
    """One tenant, ``shards`` region-sharded slices, exact answers."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        index: LocalIndex | None = None,
        *,
        shards: int = 2,
        shard_landmarks: int | None = None,
        local_fast_path: bool = True,
        parallel_scatter: bool = True,
        degraded_answers: bool = False,
        scatter_timeout: float | None = None,
        retry_policy=None,
        **kwargs: Any,
    ) -> None:
        if shards < 1:
            raise ServiceConfigError(f"shards must be >= 1, got {shards}")
        super().__init__(graph, index, **kwargs)
        frozen = self.graph
        if index is not None:
            partition = index.partition
            correlations = index.region_correlations()
        else:
            landmarks = select_landmarks(frozen, k=shard_landmarks, rng=self.seed)
            partition = bfs_traverse(frozen, landmarks)
            correlations = structural_correlations(frozen, partition)
        self.shard_plan = build_shard_plan(frozen, partition, shards, correlations)
        self.workers = [
            ShardWorker(
                graph_slice,
                seed=self.seed,
                cache_size=self.results.max_size,
                cache_ttl=self.results.ttl_seconds,
            )
            for graph_slice in cut_slices(frozen, self.shard_plan)
        ]
        self.coordinator = ShardCoordinator(
            frozen,
            self.shard_plan,
            self.workers,
            candidate_cache=self.candidates,
            local_fast_path=local_fast_path,
            parallel=parallel_scatter,
            degraded_answers=degraded_answers,
            scatter_timeout=scatter_timeout,
            retry_policy=retry_policy,
        )

    def __repr__(self) -> str:
        return (
            f"ShardedQueryService({self.graph.name!r}, "
            f"shards={self.shard_plan.num_shards}, "
            f"index={'loaded' if self.index is not None else 'none'})"
        )

    @property
    def default_algorithm(self) -> str:
        """``"sharded"`` unless the whole service forces one algorithm."""
        return self._forced_algorithm or SHARDED_ALGORITHM

    # ------------------------------------------------------------------

    def _evaluate(self, plan: QueryPlan, epoch: GraphEpoch) -> QueryResult:
        """Scatter-gather by default; forced plans run the named session.

        This overrides the *exact* half of the execute seam only: the
        base class's ``_execute`` router consults the coordinator-local
        bounds first, so definite-No/definite-Yes queries are settled
        here on the coordinator and never scatter to the workers.
        """
        if plan.forced:
            return super()._evaluate(plan, epoch)
        assert plan.query is not None
        return self.coordinator.answer(plan.query)

    # ------------------------------------------------------------------

    def apply_updates(self, edges: Any, **kwargs: Any) -> dict:
        """Refuse live updates: worker slices would go silently stale.

        The coordinator's graph is only one copy of the data — every
        :class:`~repro.shard.partitioner.GraphSlice` (region-restricted
        CSR plus border tables) held by the workers was cut from the
        pre-update snapshot, so mutating just the coordinator would make
        scatter-gather answer for a graph the slices no longer match.
        Until epochs propagate *per slice* (the slice-epoch seam noted
        in ROADMAP.md), a sharded service answers ``POST /edges`` with a
        structured 501 naming that seam.
        """
        raise UpdatesUnsupportedError(
            "sharded services cannot apply live updates: the worker "
            "GraphSlice border tables were cut from the current snapshot "
            "and would go silently stale; per-slice epoch swap is the "
            "missing seam (see ROADMAP.md)",
            detail={
                "seam": "slice-epoch",
                "shards": self.shard_plan.num_shards,
                "epoch": self.epoch.epoch_id,
            },
        )

    def health(self) -> dict:
        document = super().health()
        document["shards"] = self.shard_plan.num_shards
        return document

    def stats_snapshot(self) -> dict:
        """The inherited document plus a ``shards`` section.

        ``workers_totals`` folds every worker's per-slice service
        counters (the co-located fast-path traffic, with its own
        ``ResultAggregate`` cells and latency histograms) into one
        document via the same :func:`merge_snapshots` the registry uses
        across tenants — the shard-level aggregation view.
        """
        document = super().stats_snapshot()
        document["shards"] = {
            "plan": self.shard_plan.describe(),
            "coordinator": self.coordinator.stats(),
            "workers": [worker.describe() for worker in self.workers],
            "workers_totals": merge_snapshots(
                worker.service.stats.snapshot()
                for worker in self.workers
                if worker.service is not None
            ),
        }
        document["config"]["shards"] = self.shard_plan.num_shards
        return document

    def close(self) -> None:
        """Release the coordinator pool and every worker's slice service."""
        self.coordinator.close()
        for worker in self.workers:
            worker.close()
        super().close()
