"""`ShardedQueryService` — a tenant whose execution engine is a fleet.

Subclasses :class:`~repro.service.app.QueryService`, so everything a
tenant needs — planner, canonical cache keys, result/constraint/
candidate caches, stats ledger, JSON handlers, snapshot persistence —
is inherited unchanged, and a sharded service registers in a
:class:`~repro.service.registry.TenantRegistry` exactly like a plain
one.  Only the execution seam differs: non-trivial, non-cached plans go
to the :class:`~repro.shard.coordinator.ShardCoordinator` instead of a
pooled session, unless the request *explicitly* named an algorithm
(``plan.forced``), in which case the classic single-process path runs —
the escape hatch that keeps every paper algorithm reachable on a
sharded deployment.

Construction: the region partition comes from the loaded local index
when there is one (its ``D`` table then guides shard placement); an
index-free service builds a fresh landmark partition and derives the
correlation table structurally
(:func:`~repro.index.landmarks.structural_correlations`).  Two worker
topologies serve the slices:

* **in-process** (default): slices are cut from the frozen CSR snapshot
  and served by :class:`~repro.shard.worker.ShardWorker`\\ s in this
  process — N threads;
* **cross-host** (``worker_urls=[...]``, ``serve --worker-url``): each
  shard is an :class:`~repro.shard.worker.HttpShardWorker` stub driving
  a separate ``serve --worker SLICE_FILE`` process.  Attachment starts
  with a **handshake** — the worker's ``GET /shard/<id>`` descriptor
  must agree on wire version and plan hash (epoch/fingerprint drift is
  healed by pushing the coordinator's current slice) — and continues
  with **periodic health probes** that feed the per-worker circuit
  breakers and re-push slices to workers that restarted from stale
  files.

Live updates propagate **per slice**: :meth:`apply_updates` runs the
inherited copy-on-write epoch swap on the coordinator, re-cuts the
slices of every shard the batch touched, and pushes them over the
two-phase ``prepare``/``publish`` wire before acknowledging — bumping a
coordinated *slice epoch* that every expand response echoes, so a
scatter that straddles the swap detects the skew and re-runs against
the new topology.  The per-tenant WAL composes: the coordinator appends
the batch only after every slice acknowledged its prepare, making the
log the slice-epoch carrier replay re-cuts from.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.exceptions import (
    ServiceConfigError,
    ShardHandshakeError,
    ShardUnavailableError,
)
from repro.index.landmarks import (
    bfs_traverse,
    select_landmarks,
    structural_correlations,
)
from repro.index.local_index import LocalIndex
from repro.service.app import QueryService
from repro.service.epoch import GraphEpoch, normalize_edge_updates
from repro.service.planner import QueryPlan
from repro.service.stats import merge_snapshots
from repro.core.result import QueryResult
from repro.graph.labeled_graph import KnowledgeGraph
from repro.shard.coordinator import SHARDED_ALGORITHM, ShardCoordinator
from repro.shard.partitioner import (
    GraphSlice,
    ShardPlan,
    build_shard_plan,
    cut_slices,
)
from repro.shard.rebalance import propose_rebalance
from repro.shard.slicefile import (
    SLICE_WIRE_VERSION,
    plan_fingerprint,
    slice_document,
)
from repro.shard.worker import HttpShardWorker, ShardWorker

__all__ = ["ShardedQueryService", "DEFAULT_PROBE_INTERVAL"]

#: Seconds between health probes of remote workers.
DEFAULT_PROBE_INTERVAL = 5.0


class ShardedQueryService(QueryService):
    """One tenant, ``shards`` region-sharded slices, exact answers."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        index: LocalIndex | None = None,
        *,
        shards: int = 2,
        shard_landmarks: int | None = None,
        local_fast_path: bool = True,
        parallel_scatter: bool = True,
        degraded_answers: bool = False,
        scatter_timeout: float | None = None,
        retry_policy=None,
        worker_urls: list[str] | None = None,
        worker_timeout: float | None = None,
        probe_interval: float | None = None,
        **kwargs: Any,
    ) -> None:
        if shards < 1:
            raise ServiceConfigError(f"shards must be >= 1, got {shards}")
        super().__init__(graph, index, **kwargs)
        frozen = self.graph
        if index is not None:
            partition = index.partition
            correlations = index.region_correlations()
        else:
            landmarks = select_landmarks(frozen, k=shard_landmarks, rng=self.seed)
            partition = bfs_traverse(frozen, landmarks)
            correlations = structural_correlations(frozen, partition)
        #: Retained for D-guided rebalancing: live crossing counters are
        #: folded into this correlation table to re-place regions.
        self._partition = partition
        self._correlations = correlations
        self.shard_plan = build_shard_plan(frozen, partition, shards, correlations)
        #: Serialises every slice push (updates, rebalances, resyncs).
        self._shard_lock = threading.RLock()
        self._slice_epoch = self.epoch.epoch_id
        self._health_lock = threading.Lock()
        self._worker_health: dict[int, dict] = {}
        self._probe_stop = threading.Event()
        self._probe_thread: threading.Thread | None = None
        plan_hash = plan_fingerprint(self.shard_plan)
        if worker_urls is not None:
            if len(worker_urls) != shards:
                raise ServiceConfigError(
                    f"--shards {shards} needs exactly {shards} --worker-url "
                    f"values, got {len(worker_urls)}"
                )
            self.workers: list = [
                HttpShardWorker(url, shard_id, timeout=worker_timeout)
                for shard_id, url in enumerate(worker_urls)
            ]
        else:
            self.workers = [
                ShardWorker(
                    graph_slice,
                    seed=self.seed,
                    cache_size=self.results.max_size,
                    cache_ttl=self.results.ttl_seconds,
                    epoch=self._slice_epoch,
                    fingerprint=self.epoch.fingerprint,
                    plan_hash=plan_hash,
                    plan=self.shard_plan,
                )
                for graph_slice in cut_slices(frozen, self.shard_plan)
            ]
        self.coordinator = ShardCoordinator(
            frozen,
            self.shard_plan,
            self.workers,
            candidate_cache=self.candidates,
            local_fast_path=local_fast_path,
            parallel=parallel_scatter,
            degraded_answers=degraded_answers,
            scatter_timeout=scatter_timeout,
            retry_policy=retry_policy,
            slice_epoch=self._slice_epoch,
        )
        if worker_urls is not None:
            try:
                for shard_id, worker in enumerate(self.workers):
                    self._handshake(shard_id, worker)
            except Exception:
                self.close()
                raise
            interval = (
                DEFAULT_PROBE_INTERVAL if probe_interval is None else probe_interval
            )
            if interval and interval > 0:
                self._probe_thread = threading.Thread(
                    target=self._probe_loop,
                    args=(interval,),
                    name="repro-shard-probe",
                    daemon=True,
                )
                self._probe_thread.start()

    def __repr__(self) -> str:
        return (
            f"ShardedQueryService({self.graph.name!r}, "
            f"shards={self.shard_plan.num_shards}, "
            f"index={'loaded' if self.index is not None else 'none'})"
        )

    @property
    def default_algorithm(self) -> str:
        """``"sharded"`` unless the whole service forces one algorithm."""
        return self._forced_algorithm or SHARDED_ALGORITHM

    @property
    def slice_epoch(self) -> int:
        """The coordinated slice epoch every worker currently serves."""
        return self._slice_epoch

    # ------------------------------------------------------------------

    def _evaluate(self, plan: QueryPlan, epoch: GraphEpoch) -> QueryResult:
        """Scatter-gather by default; forced plans run the named session.

        This overrides the *exact* half of the execute seam only: the
        base class's ``_execute`` router consults the coordinator-local
        bounds first, so definite-No/definite-Yes queries are settled
        here on the coordinator and never scatter to the workers.
        """
        if plan.forced:
            return super()._evaluate(plan, epoch)
        assert plan.query is not None
        return self.coordinator.answer(plan.query)

    # ------------------------------------------------------------------
    # cross-host attachment: handshake + health probes + resync
    # ------------------------------------------------------------------

    def _handshake(self, shard_id: int, worker: HttpShardWorker) -> None:
        """Verify a remote worker serves this deployment's shard.

        Wire-version or shard-identity disagreement is a structured
        refusal (:class:`~repro.exceptions.ShardHandshakeError`); plan
        or epoch drift — a worker booted from a stale slice file — is
        healed by pushing the coordinator's current slice.
        """
        try:
            descriptor = worker.probe()
        except Exception as error:
            raise ShardHandshakeError(
                f"worker {worker.base_url} for shard {shard_id} did not "
                f"answer its descriptor probe: {error}",
                detail={"shard": shard_id, "url": worker.base_url},
            ) from error
        if descriptor.get("shard") != shard_id:
            raise ShardHandshakeError(
                f"worker {worker.base_url} serves shard "
                f"{descriptor.get('shard')!r}, expected {shard_id}",
                detail={"shard": shard_id, "descriptor": descriptor},
            )
        wire = descriptor.get("wire_version")
        if wire != SLICE_WIRE_VERSION:
            raise ShardHandshakeError(
                f"worker {worker.base_url} speaks shard wire version "
                f"{wire!r}, this coordinator speaks {SLICE_WIRE_VERSION}",
                detail={
                    "shard": shard_id,
                    "worker_wire_version": wire,
                    "coordinator_wire_version": SLICE_WIRE_VERSION,
                },
            )
        plan_hash = plan_fingerprint(self.shard_plan)
        if (
            descriptor.get("plan_hash") != plan_hash
            or descriptor.get("epoch") != self._slice_epoch
            or descriptor.get("fingerprint") != self.epoch.fingerprint
        ):
            try:
                self._resync_worker(shard_id, worker)
            except Exception as error:
                raise ShardHandshakeError(
                    f"worker {worker.base_url} disagrees on plan/epoch and "
                    f"could not be resynced: {error}",
                    detail={
                        "shard": shard_id,
                        "descriptor": {
                            key: descriptor.get(key)
                            for key in ("epoch", "fingerprint", "plan_hash")
                        },
                        "expected": {
                            "epoch": self._slice_epoch,
                            "fingerprint": self.epoch.fingerprint,
                            "plan_hash": plan_hash,
                        },
                    },
                ) from error
        self._note_health(
            shard_id,
            epoch=self._slice_epoch,
            plan_hash=plan_hash,
        )

    def _resync_worker(self, shard_id: int, worker) -> None:
        """Push the coordinator's current slice to one drifted worker."""
        with self._shard_lock:
            epoch = self.epoch
            plan = self.shard_plan
            graph_slice = GraphSlice(epoch.graph, plan, shard_id)
            plan_hash = plan_fingerprint(plan)
            txn = f"resync-{self._slice_epoch}-{shard_id}"
            if isinstance(worker, ShardWorker):
                worker.prepare_slice(
                    txn,
                    graph_slice,
                    epoch=self._slice_epoch,
                    fingerprint=epoch.fingerprint,
                    plan_hash=plan_hash,
                    plan=plan,
                )
            else:
                worker.prepare_update(
                    txn,
                    epoch=self._slice_epoch,
                    fingerprint=epoch.fingerprint,
                    plan_hash=plan_hash,
                    slice_document=slice_document(
                        graph_slice,
                        plan,
                        epoch=self._slice_epoch,
                        fingerprint=epoch.fingerprint,
                    ),
                )
            worker.publish_update(txn)
            with self._health_lock:
                entry = self._worker_health.setdefault(shard_id, {})
                entry["resyncs"] = entry.get("resyncs", 0) + 1

    def _note_health(self, shard_id: int, **fields: Any) -> None:
        with self._health_lock:
            entry = self._worker_health.setdefault(
                shard_id, {"consecutive_failures": 0}
            )
            entry["last_seen"] = time.time()
            entry["consecutive_failures"] = 0
            entry.pop("last_error", None)
            entry.update(fields)

    def _note_unhealthy(self, shard_id: int, error: BaseException) -> None:
        with self._health_lock:
            entry = self._worker_health.setdefault(
                shard_id, {"consecutive_failures": 0}
            )
            entry["consecutive_failures"] = (
                entry.get("consecutive_failures", 0) + 1
            )
            entry["last_error"] = f"{type(error).__name__}: {error}"

    def _probe_loop(self, interval: float) -> None:
        while not self._probe_stop.wait(interval):
            try:
                self._probe_workers(timeout=max(0.5, min(interval, 5.0)))
            except Exception:  # pragma: no cover - probe loop never dies
                pass

    def _probe_workers(self, timeout: float = 5.0) -> None:
        """One health sweep: probe every remote worker, heal drift.

        Probe outcomes feed the coordinator's per-worker circuit
        breakers — a responsive descriptor closes a half-open breaker
        without waiting for query traffic, and a dead worker keeps its
        breaker open between queries.  A worker answering with a stale
        epoch or plan hash (it restarted from an old slice file) gets
        the current slice re-pushed.
        """
        for shard_id, worker in enumerate(self.workers):
            probe = getattr(worker, "probe", None)
            if probe is None:
                continue
            try:
                descriptor = probe(timeout=timeout)
            except Exception as error:
                self.coordinator.breakers[shard_id].record_failure()
                self._note_unhealthy(shard_id, error)
                continue
            self.coordinator.breakers[shard_id].record_success()
            self._note_health(
                shard_id,
                epoch=descriptor.get("epoch"),
                plan_hash=descriptor.get("plan_hash"),
            )
            if (
                descriptor.get("epoch") != self._slice_epoch
                or descriptor.get("plan_hash")
                != plan_fingerprint(self.shard_plan)
            ):
                try:
                    self._resync_worker(shard_id, worker)
                except Exception as error:
                    self._note_unhealthy(shard_id, error)

    # ------------------------------------------------------------------
    # slice-epoch propagation: the two-phase push
    # ------------------------------------------------------------------

    def _extended_plan(self, graph: KnowledgeGraph) -> ShardPlan:
        """The current plan, extended over vertices interned since.

        New vertices have no landmark region, so they take the same
        round-robin owners :func:`build_shard_plan` gives unreached
        vertices — deterministic and balanced, no re-placement of
        existing vertices.
        """
        plan = self.shard_plan
        count = graph.num_vertices
        if count == plan.num_vertices:
            return plan
        shard_of = list(plan.shard_of) + [
            vid % plan.num_shards for vid in range(plan.num_vertices, count)
        ]
        return ShardPlan(
            num_shards=plan.num_shards,
            shard_of=tuple(shard_of),
            regions_by_shard=plan.regions_by_shard,
            region_shard=plan.region_shard,
        )

    def _push_slices(
        self,
        slice_epoch: int,
        *,
        plan: ShardPlan | None = None,
        touched: set[int] | None = None,
        reason: str,
    ) -> tuple[ShardPlan, list[tuple[int, str]]]:
        """Re-cut and push slices, two-phase, then publish the topology.

        Phase one *prepares* every worker — touched shards receive their
        re-cut slice (all the rebuild cost lands here, off the serving
        path), untouched shards a bare epoch bump — and any failure
        aborts all staged state and re-raises before anything served
        changes.  Past that point the new topology publishes on the
        coordinator and every worker; publish stragglers are returned
        (not raised) because the swap is already committed — their
        expands echo a stale epoch, the skew check refuses structurally,
        and the health sweep re-pushes until they converge.
        """
        epoch = self.epoch
        graph = epoch.graph
        if plan is None:
            plan = self._extended_plan(graph)
        plan_hash = plan_fingerprint(plan)
        txn = f"{reason}-{slice_epoch}"
        prepared: list = []
        try:
            for shard_id, worker in enumerate(self.workers):
                ship = touched is None or shard_id in touched
                if isinstance(worker, ShardWorker):
                    if ship:
                        worker.prepare_slice(
                            txn,
                            GraphSlice(graph, plan, shard_id),
                            epoch=slice_epoch,
                            fingerprint=epoch.fingerprint,
                            plan_hash=plan_hash,
                            plan=plan,
                        )
                    else:
                        worker.prepare_update(
                            txn,
                            epoch=slice_epoch,
                            fingerprint=epoch.fingerprint,
                            plan_hash=plan_hash,
                        )
                else:
                    document = None
                    if ship:
                        document = slice_document(
                            GraphSlice(graph, plan, shard_id),
                            plan,
                            epoch=slice_epoch,
                            fingerprint=epoch.fingerprint,
                        )
                    worker.prepare_update(
                        txn,
                        epoch=slice_epoch,
                        fingerprint=epoch.fingerprint,
                        plan_hash=plan_hash,
                        slice_document=document,
                    )
                prepared.append(worker)
        except Exception:
            for worker in prepared:
                try:
                    worker.abort_update(txn)
                except Exception:
                    pass
            raise
        # Point of no return: every worker holds the staged state.
        self.shard_plan = plan
        self._slice_epoch = slice_epoch
        self.coordinator.publish(graph, plan, slice_epoch)
        failures: list[tuple[int, str]] = []
        for shard_id, worker in enumerate(self.workers):
            try:
                worker.publish_update(txn)
            except Exception as error:
                self._note_unhealthy(shard_id, error)
                failures.append(
                    (shard_id, f"{type(error).__name__}: {error}")
                )
            else:
                if not isinstance(worker, ShardWorker):
                    self._note_health(
                        shard_id, epoch=slice_epoch, plan_hash=plan_hash
                    )
        # Queries that raced the swap may have cached answers computed
        # on the previous topology under the new epoch's namespace;
        # drop them so the cache only ever re-serves post-swap answers.
        self.results.purge(
            lambda key: isinstance(key, tuple) and key[0] == epoch.epoch_id
        )
        return plan, failures

    def _rollback_epoch(self, old: GraphEpoch, failed: GraphEpoch) -> None:
        """Un-publish a base epoch whose slice push could not prepare."""
        with self._update_lock:
            if self._epoch is failed:
                self._epoch = old
        self.results.purge(
            lambda key: isinstance(key, tuple) and key[0] == failed.epoch_id
        )

    def _touched_shards(
        self, updates: list, graph: KnowledgeGraph, plan: ShardPlan
    ) -> set[int]:
        """Owners (under ``plan``) of every updated edge's source vertex.

        An edge lives in exactly one slice — its source's — so these are
        the only slices whose content an applied batch can change.  A
        brand-new vertex that only ever appears as a target needs no
        slice re-cut: no slice stores out-edges for it yet, and the
        coordinator counts crossed-to vertices as visited without asking
        their owner to expand them.
        """
        touched: set[int] = set()
        for source, _label, _target, _op in updates:
            if graph.has_vertex(source):
                touched.add(plan.shard_of[graph.vid(source)])
        return touched

    def apply_updates(self, edges: Any, **kwargs: Any) -> dict:
        """Epoch-swap the coordinator, then propagate the swap per slice.

        The inherited copy-on-write pipeline does the graph/index work
        and publishes the coordinator's new :class:`GraphEpoch`; this
        override then re-cuts the slices of every shard owning an
        updated edge's source and drives the two-phase push.  The WAL —
        when attached — is bypassed during the base call and appended
        here instead, *after* every slice acknowledged its prepare: an
        acknowledged batch is durable and fleet-visible, and replay
        through this same method re-cuts and re-pushes slices on
        recovery.  If any worker refuses its prepare, the base epoch is
        rolled back (nothing was served from it) and the batch fails
        with a structured 503 — the deployment stays consistent at the
        previous epoch.
        """
        updates = normalize_edge_updates(edges)
        with self._shard_lock:
            old_epoch = self.epoch
            wal = self._wal
            self._wal = None
            try:
                summary = super().apply_updates(updates, **kwargs)
            finally:
                self._wal = wal
            new_epoch = self.epoch
            if new_epoch.epoch_id == old_epoch.epoch_id:
                # No-op batch: nothing published, nothing to push.
                return summary
            slice_epoch = max(new_epoch.epoch_id, self._slice_epoch + 1)
            plan = self._extended_plan(new_epoch.graph)
            touched = self._touched_shards(updates, new_epoch.graph, plan)
            try:
                plan, failures = self._push_slices(
                    slice_epoch,
                    plan=plan,
                    touched=touched,
                    reason="update",
                )
            except Exception as error:
                self._rollback_epoch(old_epoch, new_epoch)
                raise ShardUnavailableError(
                    getattr(error, "shard", -1),
                    f"slice push could not prepare: {error}",
                    detail={"epoch": old_epoch.epoch_id},
                ) from error
            if wal is not None:
                wal.append(
                    updates,
                    epoch=new_epoch.epoch_id,
                    fingerprint=new_epoch.fingerprint,
                    graph=new_epoch.graph,
                )
            summary["slice_epoch"] = slice_epoch
            summary["shards_updated"] = sorted(touched)
            if failures:
                summary["shards_unpublished"] = [
                    {"shard": shard_id, "error": message}
                    for shard_id, message in failures
                ]
            return summary

    def reset_epoch(
        self, epoch_id: int, *, expected_fingerprint: str | None = None
    ) -> None:
        """Renumber the epoch and propagate the new id to every slice.

        WAL recovery's counter-restore: the graph content is already
        correct, but workers must echo the logged epoch or every
        post-recovery scatter would look like a mid-swap skew.
        """
        with self._shard_lock:
            before = self.epoch.epoch_id
            super().reset_epoch(
                epoch_id, expected_fingerprint=expected_fingerprint
            )
            if self.epoch.epoch_id == before:
                return
            slice_epoch = max(epoch_id, self._slice_epoch + 1)
            self._push_slices(slice_epoch, reason="reset")

    # ------------------------------------------------------------------
    # D-guided rebalancing
    # ------------------------------------------------------------------

    def rebalance(self) -> dict:
        """Re-cut the shard plan from live border-crossing counters.

        Folds each worker's per-peer crossing counts into the structural
        correlation table (:func:`~repro.shard.rebalance
        .propose_rebalance` is the pure half) and — when the proposal
        actually moves a region — pushes the re-cut slices through the
        same two-phase wire an update uses, at a bumped slice epoch.
        """
        with self._shard_lock:
            crossings: dict[int, dict[int, int]] = {}
            for shard_id, worker in enumerate(self.workers):
                if isinstance(worker, ShardWorker):
                    crossings[shard_id] = worker.crossings_by_peer()
                else:
                    try:
                        descriptor = worker.probe()
                    except Exception as error:
                        raise ShardUnavailableError(
                            shard_id,
                            f"cannot read crossing counters: {error}",
                        ) from error
                    crossings[shard_id] = {
                        int(peer): int(count)
                        for peer, count in (
                            descriptor.get("crossings_by_peer") or {}
                        ).items()
                    }
            proposal = propose_rebalance(
                self._partition,
                self.shard_plan,
                self._correlations,
                crossings,
                num_vertices=self.epoch.graph.num_vertices,
            )
            if proposal is None:
                return {
                    "rebalanced": False,
                    "reason": "current placement already minimises observed "
                    "crossings (or there is nothing to move)",
                    "slice_epoch": self._slice_epoch,
                    "crossings": {
                        str(shard): {str(p): c for p, c in peers.items()}
                        for shard, peers in sorted(crossings.items())
                    },
                }
            moved = sum(
                1
                for landmark, shard in proposal.region_shard.items()
                if self.shard_plan.region_shard.get(landmark) != shard
            )
            slice_epoch = self._slice_epoch + 1
            plan, failures = self._push_slices(
                slice_epoch, plan=proposal, reason="rebalance"
            )
            document = {
                "rebalanced": True,
                "slice_epoch": slice_epoch,
                "regions_moved": moved,
                "plan": plan.describe(),
            }
            if failures:
                document["shards_unpublished"] = [
                    {"shard": shard_id, "error": message}
                    for shard_id, message in failures
                ]
            return document

    # ------------------------------------------------------------------

    def health(self) -> dict:
        document = super().health()
        document["shards"] = self.shard_plan.num_shards
        document["slice_epoch"] = self._slice_epoch
        return document

    def stats_snapshot(self) -> dict:
        """The inherited document plus a ``shards`` section.

        Each worker entry is its own descriptor (slice sizes, traffic
        and update counters — plus connection reuse for remote stubs)
        merged with the coordinator-side health ledger (``last_seen``
        age, consecutive probe failures, last observed epoch/plan).
        ``workers_totals`` folds every in-process worker's per-slice
        service counters into one document via the same
        :func:`merge_snapshots` the registry uses across tenants.
        """
        document = super().stats_snapshot()
        now = time.time()
        with self._health_lock:
            health = {
                shard_id: dict(entry)
                for shard_id, entry in self._worker_health.items()
            }
        workers = []
        for shard_id, worker in enumerate(self.workers):
            entry = worker.describe()
            ledger = health.get(shard_id)
            if ledger is not None:
                last_seen = ledger.pop("last_seen", None)
                if last_seen is not None:
                    ledger["last_seen_age_seconds"] = max(0.0, now - last_seen)
                entry["health"] = ledger
            workers.append(entry)
        document["shards"] = {
            "plan": self.shard_plan.describe(),
            "plan_hash": plan_fingerprint(self.shard_plan),
            "slice_epoch": self._slice_epoch,
            "coordinator": self.coordinator.stats(),
            "workers": workers,
            "workers_totals": merge_snapshots(
                worker.service.stats.snapshot()
                for worker in self.workers
                if getattr(worker, "service", None) is not None
            ),
        }
        document["config"]["shards"] = self.shard_plan.num_shards
        return document

    def close(self) -> None:
        """Stop probing, release the coordinator pool and every worker."""
        self._probe_stop.set()
        thread = self._probe_thread
        if thread is not None:
            thread.join(timeout=2.0)
            self._probe_thread = None
        self.coordinator.close()
        for worker in self.workers:
            worker.close()
        super().close()
