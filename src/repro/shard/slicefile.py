"""Serialized graph slices: the on-disk (and on-wire) form of a shard.

A :class:`~repro.shard.partitioner.GraphSlice` is already flat — the
region-restricted CSR arrays, the border table, the peer set — so one
versioned JSON document captures everything a worker process needs to
host the slice *without* the full graph:

* the **plan metadata** (``shard_of`` ownership, regions per shard) and
  its canonical hash (:func:`plan_fingerprint`), so a coordinator and a
  worker can prove they were cut from the same placement before
  composing answers;
* the **interning tables** (every vertex name in id order, every label
  name in id order) — slice targets and the ownership array speak
  global ids, and the co-located fast path answers by name;
* the slice's **adjacency** in deterministic (local row, ascending
  label) order — the exact ``CsrDirection.groups`` layout, from which
  offsets, flat label/target arrays and per-vertex label masks rebuild
  bit-identically — plus the border table and peer shards for
  cross-checking;
* the **epoch id and content fingerprint** of the graph the slice was
  cut from, which is what slice-epoch propagation compares.

Determinism is the contract: :func:`slice_document` builds the document
in one canonical order, so ``dump → load → dump`` is byte-identical and
a slice file doubles as a content-addressable artifact.  Files land via
:func:`~repro.utils.persist.atomic_write_json` — the same crash-durable
write-fsync-rename helper the WAL snapshots use — and every read
failure (truncation, version skew, malformed structure, plan-hash or
border-table mismatch) raises
:class:`~repro.exceptions.SliceFileError` instead of letting a worker
boot on garbage.

The same document, minus the file, is the payload of the versioned
``POST /shard/<id>/update`` wire: the coordinator re-cuts a slice after
an update batch and ships it with :func:`slice_document`; the worker
rebuilds it with :func:`slice_from_document`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro._version import __version__
from repro.exceptions import SliceFileError
from repro.graph.labeled_graph import KnowledgeGraph
from repro.shard.partitioner import GraphSlice, ShardPlan
from repro.utils.persist import atomic_write_json

__all__ = [
    "SLICE_FORMAT_VERSION",
    "SLICE_WIRE_VERSION",
    "SliceFile",
    "dump_slice",
    "load_slice",
    "plan_fingerprint",
    "slice_document",
    "slice_from_document",
]

#: On-disk format of slice files; bumped on any layout change so a
#: worker refuses a file written by an incompatible build.
SLICE_FORMAT_VERSION = 1

#: Version of the ``/shard/<id>`` descriptor + ``/shard/<id>/update``
#: wire protocol; the coordinator's startup handshake compares it.
SLICE_WIRE_VERSION = 1

_KIND = "repro-graph-slice"


def plan_fingerprint(plan: ShardPlan) -> str:
    """Canonical sha256 of a shard plan's placement decisions.

    Two deployments agree on this hash iff every vertex is owned by the
    same shard and every region is placed identically — exactly the
    condition under which their slices compose into one graph.
    """
    canonical = json.dumps(
        _plan_document(plan), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _plan_document(plan: ShardPlan) -> dict:
    return {
        "num_shards": plan.num_shards,
        "shard_of": list(plan.shard_of),
        "regions_by_shard": [list(group) for group in plan.regions_by_shard],
        "region_shard": {
            str(landmark): shard
            for landmark, shard in sorted(plan.region_shard.items())
        },
    }


def _plan_from_document(document: dict) -> ShardPlan:
    return ShardPlan(
        num_shards=int(document["num_shards"]),
        shard_of=tuple(int(owner) for owner in document["shard_of"]),
        regions_by_shard=tuple(
            tuple(int(landmark) for landmark in group)
            for group in document["regions_by_shard"]
        ),
        region_shard={
            int(landmark): int(shard)
            for landmark, shard in document["region_shard"].items()
        },
    )


def slice_document(
    graph_slice: GraphSlice,
    plan: ShardPlan,
    *,
    epoch: int,
    fingerprint: str,
) -> dict:
    """The canonical JSON document for one slice at one epoch.

    Field order and every inner ordering are fixed — names and labels
    ascending by id, adjacency rows in owned-vertex order with
    label-ascending groups straight from the slice's CSR — which is
    what makes the dump→load→dump roundtrip byte-identical.
    """
    graph = graph_slice.graph
    names: list[str] = []
    for position, name in enumerate(graph.vertex_names()):
        if not isinstance(name, str):
            raise SliceFileError(
                f"cannot serialize slice {graph_slice.shard_id}: vertex id "
                f"{position} has a non-string name {name!r}"
            )
        names.append(name)
    if len(names) != plan.num_vertices:
        raise SliceFileError(
            f"cannot serialize slice {graph_slice.shard_id}: plan covers "
            f"{plan.num_vertices} vertices but the graph has {len(names)}"
        )
    adjacency = [
        [[label_id, list(group_targets)] for label_id, group_targets in row]
        for row in graph_slice.csr.groups
    ]
    return {
        "format_version": SLICE_FORMAT_VERSION,
        "kind": _KIND,
        "build": {"version": __version__, "wire_version": SLICE_WIRE_VERSION},
        "graph_name": str(graph.name),
        "shard_id": graph_slice.shard_id,
        "epoch": int(epoch),
        "fingerprint": fingerprint,
        "plan_hash": plan_fingerprint(plan),
        "plan": _plan_document(plan),
        "labels": list(graph.labels.names()),
        "vertex_names": names,
        "adjacency": adjacency,
        "num_edges": graph_slice.num_edges,
        "border_targets": [
            [vid, list(graph_slice.border_targets[vid])]
            for vid in graph_slice.border_vertices
        ],
        "peer_shards": list(graph_slice.peer_shards),
    }


@dataclass
class SliceFile:
    """A deserialized slice plus the deployment metadata it shipped with."""

    slice: GraphSlice
    plan: ShardPlan
    shard_id: int
    epoch: int
    fingerprint: str
    plan_hash: str
    build: dict
    path: Path | None = None

    def document(self) -> dict:
        """Re-serialize (canonically; byte-identical to the source)."""
        return slice_document(
            self.slice, self.plan, epoch=self.epoch, fingerprint=self.fingerprint
        )

    def describe(self) -> dict:
        """JSON-ready identity block for descriptors and handshakes."""
        return {
            "shard": self.shard_id,
            "epoch": self.epoch,
            "fingerprint": self.fingerprint,
            "plan_hash": self.plan_hash,
            "build": dict(self.build),
        }


def slice_from_document(document: dict, *, source: str = "document") -> SliceFile:
    """Rebuild a :class:`GraphSlice` from its canonical document.

    Reconstructs the interning tables (all global vertex names in id
    order, all labels in id order), replays the slice's adjacency, and
    re-cuts the slice from the rebuilt graph — ``CsrDirection``'s
    deterministic construction guarantees the result re-serializes to
    the same bytes.  Any structural problem (version skew, plan-hash
    disagreement, edge-count or border-table mismatch, malformed JSON
    shapes) raises :class:`SliceFileError`.
    """
    try:
        version = document["format_version"]
        kind = document["kind"]
    except (TypeError, KeyError):
        raise SliceFileError(
            f"{source}: not a slice document (missing format_version/kind)"
        ) from None
    if kind != _KIND:
        raise SliceFileError(f"{source}: kind is {kind!r}, expected {_KIND!r}")
    if version != SLICE_FORMAT_VERSION:
        raise SliceFileError(
            f"{source}: slice format version {version!r} is not supported "
            f"by this build (expected {SLICE_FORMAT_VERSION})"
        )
    try:
        plan = _plan_from_document(document["plan"])
        shard_id = int(document["shard_id"])
        epoch = int(document["epoch"])
        fingerprint = document["fingerprint"]
        plan_hash = document["plan_hash"]
        build = dict(document.get("build") or {})
        graph_name = document["graph_name"]
        labels = document["labels"]
        vertex_names = document["vertex_names"]
        adjacency = document["adjacency"]
        num_edges = int(document["num_edges"])
        border = document["border_targets"]
        peers = [int(shard) for shard in document["peer_shards"]]
    except (TypeError, KeyError, ValueError) as error:
        raise SliceFileError(f"{source}: malformed slice document: {error}") from None
    if not isinstance(fingerprint, str) or not isinstance(plan_hash, str):
        raise SliceFileError(
            f"{source}: fingerprint and plan_hash must be strings"
        )
    if not 0 <= shard_id < plan.num_shards:
        raise SliceFileError(
            f"{source}: shard_id {shard_id} outside plan of "
            f"{plan.num_shards} shards"
        )
    if len(vertex_names) != plan.num_vertices:
        raise SliceFileError(
            f"{source}: {len(vertex_names)} vertex names but the plan "
            f"covers {plan.num_vertices} vertices"
        )
    expected_hash = plan_fingerprint(plan)
    if plan_hash != expected_hash:
        raise SliceFileError(
            f"{source}: plan_hash {plan_hash[:12]}… does not match the "
            f"embedded plan ({expected_hash[:12]}…) — plan metadata was "
            "altered after serialization"
        )
    graph = KnowledgeGraph(graph_name)
    try:
        for name in vertex_names:
            graph.add_vertex(name)
        if graph.num_vertices != len(vertex_names):
            raise SliceFileError(f"{source}: duplicate vertex names in document")
        for label in labels:
            graph.labels.intern(label)
        owned = plan.owned_by(shard_id)
        if len(adjacency) != len(owned):
            raise SliceFileError(
                f"{source}: {len(adjacency)} adjacency rows but shard "
                f"{shard_id} owns {len(owned)} vertices"
            )
        num_labels = graph.num_labels
        for position, row in enumerate(adjacency):
            vid = owned[position]
            for label_id, group_targets in row:
                if not 0 <= label_id < num_labels:
                    raise SliceFileError(
                        f"{source}: adjacency row {position} uses label id "
                        f"{label_id} outside the {num_labels}-label universe"
                    )
                for target in group_targets:
                    if not 0 <= target < plan.num_vertices:
                        raise SliceFileError(
                            f"{source}: adjacency row {position} targets "
                            f"vertex {target} outside the graph"
                        )
                    if not graph.add_edge_ids(vid, label_id, target):
                        raise SliceFileError(
                            f"{source}: duplicate edge ({vid}, {label_id}, "
                            f"{target}) in adjacency"
                        )
    except (TypeError, ValueError):
        raise SliceFileError(f"{source}: malformed adjacency rows") from None
    graph_slice = GraphSlice(graph.freeze(), plan, shard_id)
    if graph_slice.num_edges != num_edges:
        raise SliceFileError(
            f"{source}: document claims {num_edges} edges but the rebuilt "
            f"slice has {graph_slice.num_edges}"
        )
    try:
        declared_border = {
            int(vid): tuple(int(target) for target in targets)
            for vid, targets in border
        }
    except (TypeError, ValueError):
        raise SliceFileError(f"{source}: malformed border table") from None
    if declared_border != graph_slice.border_targets:
        raise SliceFileError(
            f"{source}: border table does not match the rebuilt slice — "
            "adjacency and ownership metadata disagree"
        )
    if tuple(sorted(peers)) != graph_slice.peer_shards:
        raise SliceFileError(
            f"{source}: peer shards {sorted(peers)} do not match the "
            f"rebuilt slice's {list(graph_slice.peer_shards)}"
        )
    return SliceFile(
        slice=graph_slice,
        plan=plan,
        shard_id=shard_id,
        epoch=epoch,
        fingerprint=fingerprint,
        plan_hash=plan_hash,
        build=build,
        path=None,
    )


def dump_slice(
    graph_slice: GraphSlice,
    plan: ShardPlan,
    path: str | Path,
    *,
    epoch: int,
    fingerprint: str,
) -> int:
    """Write one slice file atomically + durably; returns its byte size."""
    document = slice_document(
        graph_slice, plan, epoch=epoch, fingerprint=fingerprint
    )
    return atomic_write_json(document, Path(path))


def load_slice(path: str | Path) -> SliceFile:
    """Read and validate one slice file; :class:`SliceFileError` on any defect."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise SliceFileError(f"cannot read slice file {path}: {error}") from None
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise SliceFileError(
            f"slice file {path} is corrupt or truncated: {error}"
        ) from None
    if not isinstance(document, dict):
        raise SliceFileError(f"slice file {path} is not a JSON object")
    loaded = slice_from_document(document, source=str(path))
    loaded.path = path
    return loaded
