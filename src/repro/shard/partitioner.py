"""Cutting a graph into region-restricted CSR slices.

The paper's local index already partitions the graph into landmark
regions (:func:`~repro.index.landmarks.bfs_traverse`); sharding groups
those regions into ``N`` shards and cuts the
:class:`~repro.graph.csr.FrozenGraph` along the grouping:

* :func:`assign_regions` — greedy, deterministic placement of regions
  onto shards.  With a region-correlation table ``D`` (the index's own,
  or :func:`~repro.index.landmarks.structural_correlations` when no
  index is built) each region goes to the not-yet-full shard it is most
  correlated with, so border crossings — the only thing a scatter-gather
  round pays for — concentrate *inside* shards; without ``D`` the same
  loop degrades to balanced first-fit;
* :class:`ShardPlan` — the resulting vertex → shard ownership map.
  Every vertex is owned by exactly one shard: region members follow
  their region, vertices no landmark reached are dealt round-robin;
* :class:`GraphSlice` — one shard's slice of the graph: the flat
  offset/label/target CSR arrays (:meth:`CsrDirection.restricted
  <repro.graph.csr.CsrDirection.restricted>`) over the shard's owned
  vertices with per-vertex label masks, plus the **border table**
  (owned vertex → its out-neighbours owned elsewhere): the worker's
  expand loop probes it once per vertex to skip per-edge ownership
  checks on non-border vertices, and ``/stats`` reports border sizes
  and peer shards per slice.

The partition invariant the tests enforce: every edge of the source
graph lands in **exactly one** slice — the slice of the shard owning
its *source* vertex — so the union of slice closures is the graph
closure and scatter-gather search is exact, not approximate.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from repro.graph.csr import CsrDirection
from repro.graph.labeled_graph import Edge, KnowledgeGraph
from repro.index.landmarks import NO_REGION, Partition

__all__ = ["ShardPlan", "GraphSlice", "assign_regions", "build_shard_plan", "cut_slices"]

#: A shard may exceed the ideal |V|/N load by this factor before the
#: placement loop stops preferring it for correlation reasons.
_LOAD_TOLERANCE = 1.25


def assign_regions(
    partition: Partition,
    num_shards: int,
    correlations: dict[int, dict[int, int]] | None = None,
) -> dict[int, int]:
    """Map each region's landmark to a shard id (deterministic).

    Regions are placed largest-first.  Each placement scores every
    shard by the region's total ``D`` correlation (both directions)
    with the regions already on that shard, skipping shards already
    past :data:`_LOAD_TOLERANCE` × the ideal load; ties break toward
    the lighter shard, then the lower shard id.  With ``correlations``
    None every affinity is zero and the loop is balanced first-fit.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    sizes = {
        u: len(partition.members.get(u, (u,))) for u in partition.landmarks
    }
    total = sum(sizes.values())
    limit = (total / num_shards) * _LOAD_TOLERANCE if num_shards else 0.0
    order = sorted(partition.landmarks, key=lambda u: (-sizes[u], u))
    loads = [0] * num_shards
    placed: list[list[int]] = [[] for _ in range(num_shards)]
    assignment: dict[int, int] = {}
    for u in order:
        row = correlations.get(u, {}) if correlations else {}
        eligible = [
            shard_id
            for shard_id in range(num_shards)
            if loads[shard_id] + sizes[u] <= limit
        ]
        if not eligible:  # every shard past tolerance: fall back to all
            eligible = list(range(num_shards))
        best_shard = eligible[0]
        best_key: tuple[int, int] | None = None
        for shard_id in eligible:
            affinity = 0
            if correlations:
                for v in placed[shard_id]:
                    affinity += row.get(v, 0)
                    affinity += correlations.get(v, {}).get(u, 0)
            key = (affinity, -loads[shard_id])
            if best_key is None or key > best_key:
                best_key = key
                best_shard = shard_id
        assignment[u] = best_shard
        loads[best_shard] += sizes[u]
        placed[best_shard].append(u)
    return assignment


@dataclass(frozen=True)
class ShardPlan:
    """Vertex and region ownership for one sharded deployment."""

    num_shards: int
    #: ``shard_of[vid]`` — the shard owning each vertex (total: every
    #: vertex is owned somewhere, unassigned ones round-robin).
    shard_of: tuple[int, ...]
    #: Landmark ids grouped per shard, each group sorted.
    regions_by_shard: tuple[tuple[int, ...], ...]
    #: The region → shard map :func:`assign_regions` produced.
    region_shard: dict[int, int]

    @property
    def num_vertices(self) -> int:
        return len(self.shard_of)

    def owned_by(self, shard_id: int) -> list[int]:
        """Vertex ids owned by ``shard_id``, ascending."""
        return [vid for vid, owner in enumerate(self.shard_of) if owner == shard_id]

    def describe(self) -> dict:
        """JSON-ready sizes for ``/stats``."""
        counts = [0] * self.num_shards
        for owner in self.shard_of:
            counts[owner] += 1
        return {
            "num_shards": self.num_shards,
            "vertices_per_shard": counts,
            "regions_per_shard": [len(group) for group in self.regions_by_shard],
        }


def build_shard_plan(
    graph: KnowledgeGraph,
    partition: Partition,
    num_shards: int,
    correlations: dict[int, dict[int, int]] | None = None,
) -> ShardPlan:
    """Group ``partition``'s regions into ``num_shards`` shards."""
    assignment = assign_regions(partition, num_shards, correlations)
    shard_of: list[int] = []
    for vid in range(graph.num_vertices):
        region = partition.region[vid]
        if region == NO_REGION:
            # Unreached vertices still need an owner: their out-edges
            # must land in exactly one slice.  Round-robin keeps the
            # remainder balanced and deterministic.
            shard_of.append(vid % num_shards)
        else:
            shard_of.append(assignment[region])
    regions_by_shard: list[list[int]] = [[] for _ in range(num_shards)]
    for landmark, shard_id in assignment.items():
        regions_by_shard[shard_id].append(landmark)
    return ShardPlan(
        num_shards=num_shards,
        shard_of=tuple(shard_of),
        regions_by_shard=tuple(tuple(sorted(group)) for group in regions_by_shard),
        region_shard=assignment,
    )


class GraphSlice:
    """One shard's region-restricted CSR slice of a graph.

    Holds every edge whose *source* vertex the shard owns, in the same
    flat offsets/labels/targets layout (local row index, global target
    ids) plus per-vertex label masks the frozen graph serves from, and
    the border table: for each owned vertex, its out-neighbours owned by
    other shards.  Vertices with no border entry can never leak a
    frontier, so the worker's expand loop checks the table once per
    vertex and walks non-border adjacency without per-edge ownership
    tests.
    """

    __slots__ = (
        "graph",
        "shard_id",
        "shard_of",
        "regions",
        "vertex_ids",
        "local_of",
        "csr",
        "border_targets",
        "border_vertices",
        "peer_shards",
        "num_edges",
    )

    def __init__(self, graph: KnowledgeGraph, plan: ShardPlan, shard_id: int) -> None:
        owned = plan.owned_by(shard_id)
        self.graph = graph
        self.shard_id = shard_id
        self.shard_of = plan.shard_of
        self.regions = plan.regions_by_shard[shard_id]
        self.vertex_ids = tuple(owned)
        self.local_of = {vid: position for position, vid in enumerate(owned)}
        self.csr = CsrDirection.restricted(graph, owned)
        self.num_edges = len(self.csr.labels)
        border: dict[int, tuple[int, ...]] = {}
        peers: set[int] = set()
        shard_of = plan.shard_of
        for position, vid in enumerate(owned):
            external = sorted(
                {t for t in self.csr.all_targets[position] if shard_of[t] != shard_id}
            )
            if external:
                border[vid] = tuple(external)
                peers.update(shard_of[t] for t in external)
        self.border_targets = border
        self.border_vertices = tuple(sorted(border))
        self.peer_shards = tuple(sorted(peers))

    @property
    def num_vertices(self) -> int:
        """Owned vertex count."""
        return len(self.vertex_ids)

    def __repr__(self) -> str:
        return (
            f"GraphSlice(shard={self.shard_id}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, borders={len(self.border_vertices)})"
        )

    def edges(self) -> Iterator[Edge]:
        """This slice's edges as global ``(source, label, target)`` ids."""
        for position, vid in enumerate(self.vertex_ids):
            for label_id, group_targets in self.csr.groups[position]:
                for target in group_targets:
                    yield (vid, label_id, target)

    def to_graph(self, name: str | None = None) -> KnowledgeGraph:
        """This slice as a standalone :class:`KnowledgeGraph`.

        Re-interned from names, so the result is self-contained — the
        graph a shard worker's per-slice
        :class:`~repro.service.app.QueryService` serves, in-process or
        in a worker process of its own.  Owned vertices are all present
        (isolated ones included); external edge targets appear as plain
        vertices.  Because its edge set is a subset of the source
        graph's, any query answered *true* on a slice is true on the
        full graph (paths and substructure matches are preserved under
        edge-set inclusion).
        """
        slice_graph = KnowledgeGraph(
            name or f"{self.graph.name}/shard{self.shard_id}"
        )
        name_of = self.graph.name_of
        label_name = self.graph.label_name
        for vid in self.vertex_ids:
            slice_graph.add_vertex(name_of(vid))
        for source, label_id, target in self.edges():
            slice_graph.add_edge(name_of(source), label_name(label_id), name_of(target))
        return slice_graph

    def describe(self) -> dict:
        """JSON-ready sizes for shard-level ``/stats``."""
        return {
            "shard": self.shard_id,
            "regions": len(self.regions),
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "border_vertices": len(self.border_vertices),
            "peer_shards": list(self.peer_shards),
        }


def cut_slices(graph: KnowledgeGraph, plan: ShardPlan) -> list[GraphSlice]:
    """Cut one :class:`GraphSlice` per shard of ``plan``."""
    return [GraphSlice(graph, plan, shard_id) for shard_id in range(plan.num_shards)]
