"""repro.shard — region-sharded scatter-gather query serving.

Horizontal partitioning for the query service: the landmark regions the
paper's local index already computes become the unit of placement, the
PR 3 frozen-CSR layout becomes the wire format of a shard, and the
serving stack gains a second execution topology next to the
single-process one.  The pieces compose in one direction:

========================  =============================================
:mod:`~.partitioner`      ``D``-guided region → shard placement,
                          :class:`ShardPlan` vertex ownership,
                          :class:`GraphSlice` region-restricted CSR
                          slices with border tables
:mod:`~.worker`           :class:`ShardWorker` — slice-local closure
                          expansion + the co-located fast path over a
                          per-slice ``QueryService``;
                          :class:`HttpShardWorker` drives a remote one
:mod:`~.coordinator`      :class:`ShardCoordinator` — multi-round
                          scatter-gather closures, exact two-phase LSCR
                          evaluation, early stop, round telemetry
:mod:`~.service`          :class:`ShardedQueryService` — a drop-in
                          tenant whose executor is the coordinator
========================  =============================================

Start one from the CLI with ``python -m repro serve --graph g.tsv
--shards 4`` or embed it::

    from repro.shard import ShardedQueryService

    service = ShardedQueryService.from_files("g.tsv", "g.index.json", shards=4)
    answer, meta = service.query("a", "b", ["l0"], "SELECT ?x WHERE { ... }")

Sharded and unsharded services answer identically on every query — the
randomized agreement suite (``tests/shard/``) holds them to that.
"""

from repro.shard.coordinator import ShardCoordinator
from repro.shard.partitioner import (
    GraphSlice,
    ShardPlan,
    assign_regions,
    build_shard_plan,
    cut_slices,
)
from repro.shard.service import ShardedQueryService
from repro.shard.worker import ExpandResult, HttpShardWorker, ShardWorker

__all__ = [
    "ExpandResult",
    "GraphSlice",
    "HttpShardWorker",
    "ShardCoordinator",
    "ShardPlan",
    "ShardWorker",
    "ShardedQueryService",
    "assign_regions",
    "build_shard_plan",
    "cut_slices",
]
