"""repro.shard — region-sharded scatter-gather query serving.

Horizontal partitioning for the query service: the landmark regions the
paper's local index already computes become the unit of placement, the
PR 3 frozen-CSR layout becomes the wire format of a shard, and the
serving stack gains a second execution topology next to the
single-process one.  The pieces compose in one direction:

========================  =============================================
:mod:`~.partitioner`      ``D``-guided region → shard placement,
                          :class:`ShardPlan` vertex ownership,
                          :class:`GraphSlice` region-restricted CSR
                          slices with border tables
:mod:`~.slicefile`        deterministic slice serialization — the file
                          a worker process boots from, stamped with
                          slice epoch, content fingerprint and plan
                          hash (:func:`dump_slice` / :func:`load_slice`)
:mod:`~.worker`           :class:`ShardWorker` — slice-local closure
                          expansion, the co-located fast path over a
                          per-slice ``QueryService``, and the two-phase
                          prepare/publish slice swap;
                          :class:`HttpShardWorker` drives a remote one
                          over pooled keep-alive connections
:mod:`~.coordinator`      :class:`ShardCoordinator` — multi-round
                          scatter-gather closures, exact two-phase LSCR
                          evaluation, early stop, slice-epoch skew
                          detection, round telemetry
:mod:`~.rebalance`        :func:`propose_rebalance` — D-guided re-cut
                          of the shard plan from live border-crossing
                          counters
:mod:`~.service`          :class:`ShardedQueryService` — a drop-in
                          tenant whose executor is the coordinator,
                          with per-slice update propagation, remote
                          worker handshake/health and rebalancing
========================  =============================================

Start one from the CLI with ``python -m repro serve --graph g.tsv
--shards 4`` or embed it::

    from repro.shard import ShardedQueryService

    service = ShardedQueryService.from_files("g.tsv", "g.index.json", shards=4)
    answer, meta = service.query("a", "b", ["l0"], "SELECT ?x WHERE { ... }")

Cross-host, the same topology splits into processes: ``python -m repro
cut g.tsv --shards 2 --out slices/`` serializes the slices, each
``serve --worker slices/shard-<id>.slice.json`` process serves one,
and ``serve --graph g.tsv --shards 2 --worker-url ...`` attaches them
by URL.

Sharded and unsharded services answer identically on every query — the
randomized agreement suite (``tests/shard/``) holds them to that,
in-process and across worker processes.
"""

from repro.shard.coordinator import ShardCoordinator
from repro.shard.partitioner import (
    GraphSlice,
    ShardPlan,
    assign_regions,
    build_shard_plan,
    cut_slices,
)
from repro.shard.rebalance import propose_rebalance
from repro.shard.service import ShardedQueryService
from repro.shard.slicefile import (
    SliceFile,
    dump_slice,
    load_slice,
    plan_fingerprint,
    slice_document,
    slice_from_document,
)
from repro.shard.worker import ExpandResult, HttpShardWorker, ShardWorker

__all__ = [
    "ExpandResult",
    "GraphSlice",
    "HttpShardWorker",
    "ShardCoordinator",
    "ShardPlan",
    "ShardWorker",
    "ShardedQueryService",
    "SliceFile",
    "assign_regions",
    "build_shard_plan",
    "cut_slices",
    "dump_slice",
    "load_slice",
    "plan_fingerprint",
    "propose_rebalance",
    "slice_document",
    "slice_from_document",
]
