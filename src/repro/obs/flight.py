"""The slow-query flight recorder: a bounded ledger of the worst traces.

When a query is slow the histogram says *that* it was slow; the flight
recorder says *why*: it keeps the N worst entries seen so far — each a
JSON-ready dict carrying the query's canonical key, outcome metadata
and (when the request was traced) its span tree — behind
``GET /debug/slow``.

Design points:

* **bounded** — a min-heap of at most ``max_entries`` keyed on
  duration: a new entry slower than the current fastest kept entry
  replaces it, anything faster is dropped (counted, not stored), so
  memory is O(N) regardless of traffic;
* **threshold-gated** — only entries at or above ``threshold_ms``
  are considered at all; the fast path for a sub-threshold query is one
  float compare (:meth:`interested`), called before the caller builds
  the entry dict, so normal traffic never allocates for the recorder;
* **epoch-durable** — the recorder belongs to the
  :class:`~repro.service.app.QueryService`, not to any
  :class:`~repro.service.epoch.GraphEpoch`, so entries recorded before
  a live-update swap survive it: a post-update latency regression is
  diagnosable from the recorded pre/post traces, which carry the epoch
  id that answered them.

Thread-safe: one lock around the heap; entries are plain dicts the
caller must not mutate after recording.
"""

from __future__ import annotations

import heapq
import threading
import time

__all__ = ["FlightRecorder", "DEFAULT_SLOW_MS", "DEFAULT_SLOW_LOG_SIZE"]

#: Default slow-query threshold (``serve --slow-ms``).
DEFAULT_SLOW_MS = 250.0

#: Default worst-N capacity (``serve --slow-log-size``).
DEFAULT_SLOW_LOG_SIZE = 16


class FlightRecorder:
    """Keep the ``max_entries`` slowest entries at/above ``threshold_ms``."""

    def __init__(
        self,
        threshold_ms: float = DEFAULT_SLOW_MS,
        max_entries: int = DEFAULT_SLOW_LOG_SIZE,
    ) -> None:
        if threshold_ms < 0:
            raise ValueError(f"threshold_ms must be >= 0, got {threshold_ms}")
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.threshold_ms = threshold_ms
        self.max_entries = max_entries
        self._lock = threading.Lock()
        #: Min-heap of (seconds, sequence, entry): the root is the
        #: fastest kept entry, i.e. the first to evict.  The sequence
        #: number breaks duration ties so dicts are never compared.
        self._heap: list[tuple[float, int, dict]] = []
        self._sequence = 0
        self._seen = 0
        self._dropped = 0

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(threshold_ms={self.threshold_ms}, "
            f"kept={len(self._heap)}/{self.max_entries})"
        )

    def interested(self, seconds: float) -> bool:
        """True when a ``seconds``-long request is worth an entry.

        The pre-filter callers use *before* building the entry dict —
        one multiply and compare, no lock — so the recorder costs
        nothing on sub-threshold traffic.
        """
        return seconds * 1000.0 >= self.threshold_ms

    def record(self, seconds: float, entry: dict) -> bool:
        """Offer one entry; returns True when it was kept.

        ``entry`` is stored as given plus ``seconds`` and a wall-clock
        ``recorded_at`` stamp.  Entries below the threshold, or faster
        than everything already kept when full, are counted as seen (and
        dropped) but not stored.
        """
        with self._lock:
            self._seen += 1
            if seconds * 1000.0 < self.threshold_ms:
                self._dropped += 1
                return False
            entry = {"seconds": seconds, "recorded_at": time.time(), **entry}
            self._sequence += 1
            item = (seconds, self._sequence, entry)
            if len(self._heap) < self.max_entries:
                heapq.heappush(self._heap, item)
                return True
            if seconds <= self._heap[0][0]:
                self._dropped += 1
                return False
            heapq.heapreplace(self._heap, item)
            self._dropped += 1
            return True

    def snapshot(self) -> list[dict]:
        """Kept entries, slowest first (JSON-ready)."""
        with self._lock:
            ordered = sorted(self._heap, key=lambda item: (-item[0], item[1]))
            return [dict(entry) for _, _, entry in ordered]

    def summary(self) -> dict:
        """Counters for the ``/stats`` document."""
        with self._lock:
            return {
                "threshold_ms": self.threshold_ms,
                "max_entries": self.max_entries,
                "kept": len(self._heap),
                "seen": self._seen,
                "dropped": self._dropped,
                "worst_ms": self._heap and max(
                    item[0] for item in self._heap
                ) * 1000.0 or 0.0,
            }

    def clear(self) -> int:
        """Drop every kept entry (counters survive); returns how many."""
        with self._lock:
            count = len(self._heap)
            self._heap.clear()
            return count
