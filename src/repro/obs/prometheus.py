"""Prometheus text exposition over the existing ``/stats`` snapshots.

No client library and no new dependency: ``GET /metrics`` is a pure
formatter from the JSON documents the service already produces
(:meth:`~repro.service.app.QueryService.stats_snapshot`) into the
`Prometheus text format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_,
version 0.0.4.  Everything the snapshot counts appears as a sample:

* request/traffic counters (``repro_queries_total`` and friends),
  per-kind error counters, per-algorithm work aggregates;
* every :class:`~repro.service.stats.LatencyHistogram` as a native
  Prometheus histogram — cumulative ``_bucket`` series ending in the
  mandatory ``le="+Inf"`` bucket, plus ``_sum`` and ``_count``;
* cache hit/miss/eviction/size gauges for the result, constraint and
  candidate caches;
* epoch identity and age, graph sizes, index state, slow-query
  flight-recorder counters;
* shard plan/coordinator/worker counters when the tenant is sharded
  (workers labelled ``shard="<id>"``);
* write-ahead-log counters on a durable leader (``repro_wal_*``) and
  replication lag gauges on a follower (``repro_follower_lag_epochs`` /
  ``repro_follower_lag_seconds``);
* one ``repro_build_info`` gauge carrying the package version.

Multi-tenant servers label every per-tenant sample ``tenant="<name>"``,
so one scrape covers the whole process and PromQL can aggregate or
isolate tenants freely.  :func:`parse_prometheus_text` is the matching
(deliberately strict) parser used by the tests, the CI ``metrics-shape``
job and the load generator to read a scrape back.
"""

from __future__ import annotations

import math
import re
from typing import Any

__all__ = [
    "render_metrics",
    "render_service_metrics",
    "parse_prometheus_text",
    "format_value",
]

_METRIC_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def format_value(value: float) -> str:
    """A sample value in exposition form (``+Inf``-aware, no exponent
    surprises: ``repr`` keeps round-trip precision)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value)) if isinstance(value, float) else str(value)


def _escape_label(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


class _Families:
    """Samples grouped per metric family, rendered with one HELP/TYPE
    header each (the format forbids repeating a family's header)."""

    def __init__(self) -> None:
        self._families: dict[str, tuple[str, str, list[tuple[dict, float]]]] = {}

    def add(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: dict[str, Any],
        value: float,
    ) -> None:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = (kind, help_text, [])
        family[2].append((labels, float(value)))

    def render(self) -> str:
        lines: list[str] = []
        for name in sorted(self._families):
            kind, help_text, samples = self._families[name]
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, value in samples:
                if labels:
                    rendered = ",".join(
                        f'{key}="{_escape_label(labels[key])}"'
                        for key in sorted(labels)
                    )
                    lines.append(f"{name}{{{rendered}}} {format_value(value)}")
                else:
                    lines.append(f"{name} {format_value(value)}")
        return "\n".join(lines) + "\n"


def _histogram(
    families: _Families,
    name: str,
    help_text: str,
    labels: dict[str, Any],
    document: dict,
) -> None:
    """One snapshot histogram as cumulative ``_bucket``/``_sum``/``_count``.

    The snapshot stores per-bucket (non-cumulative) counts with one more
    count than bounds — the overflow bucket, which becomes the
    ``le="+Inf"`` series the format requires; its cumulative value
    always equals ``_count``.
    """
    bounds = document.get("bucket_bounds_seconds") or []
    counts = document.get("bucket_counts") or []
    cumulative = 0
    for position, bound in enumerate(bounds):
        if position < len(counts):
            cumulative += counts[position]
        families.add(
            f"{name}_bucket",
            "histogram",
            help_text,
            {**labels, "le": format_value(float(bound))},
            cumulative,
        )
    total = sum(counts) if counts else document.get("count", 0)
    families.add(
        f"{name}_bucket", "histogram", help_text,
        {**labels, "le": "+Inf"}, total,
    )
    families.add(f"{name}_sum", "histogram", help_text, labels,
                 document.get("sum_seconds", 0.0))
    families.add(f"{name}_count", "histogram", help_text, labels, total)


#: ``service.queries`` snapshot keys → (metric suffix, help).
_QUERY_COUNTERS = {
    "total": ("queries_total", "Queries answered (any path)"),
    "executed": ("queries_executed_total", "Queries that ran a search"),
    "cached": ("queries_cached_total", "Queries answered from the result cache"),
    "trivial": ("queries_trivial_total", "Queries the planner decided"),
    "true_answers": ("queries_true_answers_total", "Queries answered true"),
}

_UPDATE_COUNTERS = {
    "batches": ("update_batches_total", "Applied update batches (epoch swaps)"),
    "edges_added": ("update_edges_added_total", "Edges added by updates"),
    "edges_duplicate": ("update_edges_duplicate_total",
                        "Duplicate edges in update batches"),
    "edges_removed": ("update_edges_removed_total",
                      "Edges removed by updates"),
    "edges_missing": ("update_edges_missing_total",
                      "Removals that named an absent edge"),
    "vertices_added": ("update_vertices_added_total",
                       "Vertices interned by updates"),
}

_CACHE_SECTIONS = (
    ("result_cache", "result"),
    ("constraint_cache", "constraint"),
    ("candidate_cache", "candidate"),
)

_CACHE_COUNTERS = ("hits", "misses", "evictions", "expirations")
_CACHE_GAUGES = ("size", "max_size", "hit_rate")

_COORDINATOR_COUNTERS = (
    "queries", "fast_path_hits", "rounds_total", "expand_calls_total",
    "crossings_total", "scatter_serial_fallbacks", "epoch_skew_retries",
)

#: ``coordinator.resilience`` counter keys → metric suffix (all under
#: ``repro_resilience_*``, the fault-tolerance surface).
_RESILIENCE_COUNTERS = {
    "retries": ("retries_total", "Shard expand calls retried"),
    "worker_failures": ("worker_failures_total",
                        "Shard expand failures (after retries)"),
    "breaker_rejections": ("breaker_rejections_total",
                           "Expand calls rejected by an open breaker"),
    "degraded_answers": ("degraded_answers_total",
                         "Answers computed over surviving shards only"),
    "deadline_exceeded": ("deadline_exceeded_total",
                          "Queries that ran out of budget in the coordinator"),
    "fast_path_errors": ("fast_path_errors_total",
                         "Co-located fast-path probe failures"),
}

#: Per-shard breaker stats keys rendered as labelled series.
_BREAKER_COUNTERS = {
    "opens": ("breaker_opens_total", "Times a shard breaker tripped open"),
    "rejected": ("breaker_rejected_total",
                 "Calls rejected while a shard breaker was open"),
    "failures": ("breaker_failures_total", "Failures seen by a shard breaker"),
    "successes": ("breaker_successes_total",
                  "Successes seen by a shard breaker"),
}

_WORKER_COUNTERS = (
    "expand_calls", "seeds_in", "reached_out", "crossings_out",
    "local_queries", "local_hits",
    "updates_prepared", "updates_published", "updates_aborted",
)

_WORKER_GAUGES = ("regions", "vertices", "edges", "border_vertices")

#: Remote-stub connection-pool stats (``HttpShardWorker.describe()``).
_WORKER_POOL_COUNTERS = (
    "connections_opened", "connection_reuses", "reconnects",
)

#: Coordinator-side health-ledger fields merged into each worker entry.
_WORKER_HEALTH_GAUGES = {
    "epoch": ("slice_epoch", "Slice epoch the worker last reported"),
    "consecutive_failures": (
        "consecutive_failures",
        "Consecutive failed health probes for the worker",
    ),
    "last_seen_age_seconds": (
        "last_seen_age_seconds",
        "Seconds since the worker last answered a probe or handshake",
    ),
    "resyncs": (
        "resyncs_total",
        "Times the coordinator re-pushed a slice to heal worker drift",
    ),
}


def _service_section(
    families: _Families, labels: dict[str, Any], service: dict
) -> None:
    """The ``service`` (ServiceStats) snapshot section."""
    families.add("repro_uptime_seconds", "gauge",
                 "Seconds since the service started", labels,
                 service.get("uptime_seconds", 0.0))
    if "started_at" in service:
        families.add("repro_started_at_seconds", "gauge",
                     "Unix time the service started", labels,
                     service["started_at"])
    queries = service.get("queries", {})
    for key, (suffix, help_text) in _QUERY_COUNTERS.items():
        families.add(f"repro_{suffix}", "counter", help_text, labels,
                     queries.get(key, 0))
    batches = service.get("batches", {})
    families.add("repro_batches_total", "counter", "Batch requests",
                 labels, batches.get("requests", 0))
    families.add("repro_batch_queries_total", "counter",
                 "Queries answered inside batches", labels,
                 batches.get("queries", 0))
    updates = service.get("updates", {})
    for key, (suffix, help_text) in _UPDATE_COUNTERS.items():
        families.add(f"repro_{suffix}", "counter", help_text, labels,
                     updates.get(key, 0))
    for kind, count in sorted(service.get("errors", {}).items()):
        families.add("repro_errors_total", "counter",
                     "Failed requests by error kind",
                     {**labels, "kind": kind}, count)
    resilience = service.get("resilience", {})
    families.add("repro_requests_shed_total", "counter",
                 "Requests rejected by admission control", labels,
                 resilience.get("requests_shed", 0))
    families.add("repro_degraded_answers_total", "counter",
                 "Answers served over surviving shards only", labels,
                 resilience.get("degraded_answers", 0))
    for algorithm, cell in sorted(service.get("algorithms", {}).items()):
        cell_labels = {**labels, "algorithm": algorithm}
        families.add("repro_algorithm_queries_total", "counter",
                     "Executed queries per algorithm", cell_labels,
                     cell.get("count", 0))
        families.add("repro_algorithm_true_answers_total", "counter",
                     "True answers per algorithm", cell_labels,
                     cell.get("true_answers", 0))
        families.add("repro_algorithm_seconds_total", "counter",
                     "Search seconds per algorithm", cell_labels,
                     cell.get("total_seconds", 0.0))
        families.add("repro_algorithm_mean_passed_vertices", "gauge",
                     "Mean passed vertices per algorithm", cell_labels,
                     cell.get("mean_passed_vertices", 0.0))
    for endpoint, histogram in sorted(service.get("latency", {}).items()):
        endpoint_labels = {**labels, "endpoint": endpoint}
        _histogram(families, "repro_request_latency_seconds",
                   "Request latency by endpoint", endpoint_labels, histogram)
        families.add("repro_request_latency_max_seconds", "gauge",
                     "Worst observed latency by endpoint", endpoint_labels,
                     histogram.get("max_seconds", 0.0))


def _shards_section(
    families: _Families, labels: dict[str, Any], shards: dict
) -> None:
    plan = shards.get("plan", {})
    families.add("repro_shard_count", "gauge", "Shards in the plan",
                 labels, plan.get("num_shards", 0))
    if "slice_epoch" in shards:
        families.add("repro_shard_slice_epoch", "gauge",
                     "Coordinated slice epoch the fleet serves", labels,
                     shards["slice_epoch"])
    coordinator = shards.get("coordinator", {})
    for key in _COORDINATOR_COUNTERS:
        families.add(f"repro_shard_coordinator_{key}", "counter",
                     "Scatter-gather coordinator counters", labels,
                     coordinator.get(key, 0))
    families.add("repro_shard_coordinator_mean_rounds", "gauge",
                 "Mean frontier-exchange rounds per query", labels,
                 coordinator.get("mean_rounds", 0.0))
    resilience = coordinator.get("resilience")
    if isinstance(resilience, dict):
        for key, (suffix, help_text) in _RESILIENCE_COUNTERS.items():
            families.add(f"repro_resilience_{suffix}", "counter", help_text,
                         labels, resilience.get(key, 0))
        families.add("repro_resilience_degraded_mode", "gauge",
                     "1 when --degraded-answers is on", labels,
                     1 if resilience.get("degraded_mode") else 0)
        for shard, breaker in sorted(resilience.get("breakers", {}).items()):
            shard_labels = {**labels, "shard": shard}
            families.add("repro_resilience_breaker_state", "gauge",
                         "Breaker state (0 closed, 1 half-open, 2 open)",
                         shard_labels, breaker.get("state_code", 0))
            for key, (suffix, help_text) in _BREAKER_COUNTERS.items():
                families.add(f"repro_resilience_{suffix}", "counter",
                             help_text, shard_labels, breaker.get(key, 0))
    for worker in shards.get("workers", []):
        worker_labels = {**labels, "shard": worker.get("shard", "")}
        for key in _WORKER_COUNTERS:
            if key in worker:
                families.add(f"repro_shard_worker_{key}_total", "counter",
                             "Shard worker traffic counters", worker_labels,
                             worker[key])
        for key in _WORKER_GAUGES:
            if key in worker:
                families.add(f"repro_shard_worker_{key}", "gauge",
                             "Shard worker slice sizes", worker_labels,
                             worker[key])
        if isinstance(worker.get("epoch"), (int, float)):
            # In-process workers report their slice epoch directly; for
            # remote stubs it arrives through the health ledger below.
            families.add("repro_shard_worker_slice_epoch", "gauge",
                         "Slice epoch the worker last reported",
                         worker_labels, worker["epoch"])
        for key in _WORKER_POOL_COUNTERS:
            if key in worker:
                families.add(f"repro_shard_worker_{key}_total", "counter",
                             "Remote worker connection-pool counters",
                             worker_labels, worker[key])
        if "idle_connections" in worker:
            families.add("repro_shard_worker_idle_connections", "gauge",
                         "Pooled idle keep-alive connections to the worker",
                         worker_labels, worker["idle_connections"])
        health = worker.get("health")
        if isinstance(health, dict):
            for key, (suffix, help_text) in _WORKER_HEALTH_GAUGES.items():
                value = health.get(key)
                if isinstance(value, (int, float)):
                    kind = "counter" if suffix.endswith("_total") else "gauge"
                    families.add(f"repro_shard_worker_{suffix}", kind,
                                 help_text, worker_labels, value)


def render_service_metrics(
    families: _Families, tenant: str, document: dict
) -> None:
    """Fold one tenant's ``stats_snapshot`` document into ``families``."""
    labels = {"tenant": tenant}
    _service_section(families, labels, document.get("service", {}))
    for section, cache in _CACHE_SECTIONS:
        stats = document.get(section)
        if not isinstance(stats, dict):
            continue
        cache_labels = {**labels, "cache": cache}
        for key in _CACHE_COUNTERS:
            families.add(f"repro_cache_{key}_total", "counter",
                         "Cache traffic by cache", cache_labels,
                         stats.get(key, 0))
        for key in _CACHE_GAUGES:
            families.add(f"repro_cache_{key}", "gauge",
                         "Cache occupancy by cache", cache_labels,
                         stats.get(key, 0))
    graph = document.get("graph", {})
    for key in ("vertices", "edges", "labels"):
        families.add(f"repro_graph_{key}", "gauge",
                     "Served graph sizes", labels, graph.get(key, 0))
    index = document.get("index", {})
    families.add("repro_index_loaded", "gauge",
                 "1 when a local index is loaded", labels,
                 1 if index.get("loaded") else 0)
    if "landmarks" in index:
        families.add("repro_index_landmarks", "gauge",
                     "Landmarks in the loaded index", labels,
                     index["landmarks"])
    epoch = document.get("epoch", {})
    if epoch:
        families.add("repro_epoch_id", "gauge",
                     "Current serving epoch id", labels,
                     epoch.get("epoch_id", 0))
        if "age_seconds" in epoch:
            families.add("repro_epoch_age_seconds", "gauge",
                         "Seconds since the current epoch was published",
                         labels, epoch["age_seconds"])
    slow = document.get("slow_queries")
    if isinstance(slow, dict):
        families.add("repro_slow_queries_seen_total", "counter",
                     "Requests offered to the flight recorder", labels,
                     slow.get("seen", 0))
        families.add("repro_slow_queries_kept", "gauge",
                     "Entries currently in the flight recorder", labels,
                     slow.get("kept", 0))
        families.add("repro_slow_query_threshold_ms", "gauge",
                     "Flight-recorder slow threshold", labels,
                     slow.get("threshold_ms", 0.0))
        families.add("repro_slow_query_worst_ms", "gauge",
                     "Slowest recorded entry", labels,
                     slow.get("worst_ms", 0.0))
    wal = document.get("wal")
    if isinstance(wal, dict):
        families.add("repro_wal_records_total", "counter",
                     "Records appended to the write-ahead log", labels,
                     wal.get("records", 0))
        families.add("repro_wal_segments", "gauge",
                     "Live WAL segment files", labels,
                     wal.get("segments", 0))
        families.add("repro_wal_epoch", "gauge",
                     "Last epoch recorded in the write-ahead log", labels,
                     wal.get("epoch", 0))
        snapshot_epoch = wal.get("snapshot_epoch")
        if snapshot_epoch is not None:
            families.add("repro_wal_snapshot_epoch", "gauge",
                         "Epoch of the newest compaction snapshot", labels,
                         snapshot_epoch)
    replication = document.get("replication")
    if isinstance(replication, dict):
        families.add("repro_follower_lag_epochs", "gauge",
                     "Epochs the follower trails the log tip by", labels,
                     replication.get("lag_epochs", 0))
        families.add("repro_follower_lag_seconds", "gauge",
                     "Seconds the oldest unapplied record has waited", labels,
                     replication.get("lag_seconds", 0.0))
        families.add("repro_follower_wal_epoch", "gauge",
                     "Log-tip epoch as of the follower's last poll", labels,
                     replication.get("wal_epoch", 0))
        families.add("repro_follower_records_applied_total", "counter",
                     "WAL records the follower has republished", labels,
                     replication.get("records_applied", 0))
        families.add("repro_follower_stuck", "gauge",
                     "1 when the follower thread failed to stop and was "
                     "abandoned", labels,
                     1 if replication.get("stuck") else 0)
    admission = document.get("admission")
    if isinstance(admission, dict):
        families.add("repro_admission_active", "gauge",
                     "Requests currently admitted", labels,
                     admission.get("active", 0))
        families.add("repro_admission_queued", "gauge",
                     "Requests waiting for an admission slot", labels,
                     admission.get("queued", 0))
        families.add("repro_admission_max_concurrent", "gauge",
                     "Concurrent-request cap", labels,
                     admission.get("max_concurrent", 0))
        families.add("repro_admission_admitted_total", "counter",
                     "Requests admitted", labels,
                     admission.get("admitted", 0))
        families.add("repro_admission_shed_total", "counter",
                     "Requests shed (queue full or wait exhausted)", labels,
                     admission.get("shed", 0))
        families.add("repro_admission_queue_timeouts_total", "counter",
                     "Queued requests that timed out waiting", labels,
                     admission.get("queue_timeouts", 0))
    approx = document.get("approx")
    if isinstance(approx, dict):
        families.add("repro_approx_routed_total", "counter",
                     "Queries the approx-tier router inspected", labels,
                     approx.get("routed", 0))
        families.add("repro_approx_short_circuit_no_total", "counter",
                     "Definite-No answers from the label-blind bounds",
                     labels, approx.get("short_circuit_no", 0))
        families.add("repro_approx_short_circuit_yes_total", "counter",
                     "Definite-Yes answers from re-verified witness paths",
                     labels, approx.get("short_circuit_yes", 0))
        families.add("repro_approx_exact_fallthrough_total", "counter",
                     "Uncertain-band queries that ran the exact evaluators",
                     labels, approx.get("exact_fallthrough", 0))
        families.add("repro_approx_short_circuit_rate", "gauge",
                     "Fraction of routed queries settled without INS/UIS*",
                     labels, approx.get("short_circuit_rate", 0.0))
        families.add("repro_approx_answers_total", "counter",
                     "Best-effort answers served in mode=approximate",
                     labels, approx.get("approximate_answers", 0))
        families.add("repro_approx_rechecks_total", "counter",
                     "Approximate answers sampled for an exact re-check",
                     labels, approx.get("rechecks", 0))
        families.add("repro_approx_recheck_mismatches_total", "counter",
                     "Sampled re-checks where the approximate answer was "
                     "wrong", labels,
                     approx.get("recheck_mismatches", 0))
        families.add("repro_approx_false_rate", "gauge",
                     "Observed approximate false rate "
                     "(mismatches / re-checks); alert on drift", labels,
                     approx.get("false_rate", 0.0))
        witness = approx.get("witness_cache")
        if isinstance(witness, dict):
            families.add("repro_approx_witness_entries", "gauge",
                         "Witness paths currently cached", labels,
                         witness.get("size", 0))
            families.add("repro_approx_witness_hits_total", "counter",
                         "Witness-cache lookups that found a path", labels,
                         witness.get("hits", 0))
            families.add("repro_approx_witness_invalidations_total",
                         "counter",
                         "Cached witnesses dropped after failing "
                         "re-verification", labels,
                         witness.get("invalidations", 0))
        bounds = approx.get("bounds")
        if isinstance(bounds, dict) and bounds.get("mode") != "none":
            families.add("repro_approx_bounds_components", "gauge",
                         "Strongly connected components in the bounds "
                         "condensation", labels,
                         bounds.get("components", 0))
            families.add("repro_approx_bounds_build_seconds", "gauge",
                         "Time the current epoch's bounds index took to "
                         "build", labels,
                         bounds.get("build_seconds", 0.0))
    shards = document.get("shards")
    if isinstance(shards, dict):
        _shards_section(families, labels, shards)


def render_metrics(
    documents: dict[str, dict],
    *,
    version: str,
    started_at: float | None = None,
    registry: dict | None = None,
) -> str:
    """The full ``GET /metrics`` body.

    ``documents`` maps tenant name → that tenant's ``stats_snapshot``
    document (loaded tenants only — a scrape must never force a lazy
    warm start).  ``registry`` optionally carries the registry-level
    counters (tenant counts, unattributed errors).
    """
    families = _Families()
    families.add("repro_build_info", "gauge",
                 "Package version (value is always 1)",
                 {"version": version}, 1)
    if started_at is not None:
        families.add("repro_process_started_at_seconds", "gauge",
                     "Unix time the oldest tenant started", {}, started_at)
    if registry is not None:
        families.add("repro_tenants", "gauge", "Registered tenants", {},
                     registry.get("tenant_count", 0))
        families.add("repro_tenants_loaded", "gauge",
                     "Tenants warm-started", {},
                     registry.get("tenants_loaded", 0))
        for kind, count in sorted(registry.get("errors", {}).items()):
            families.add("repro_registry_errors_total", "counter",
                         "Request errors not attributable to a tenant",
                         {"kind": kind}, count)
    for tenant in sorted(documents):
        render_service_metrics(families, tenant, documents[tenant])
    return families.render()


def parse_prometheus_text(text: str) -> dict[tuple[str, tuple], float]:
    """Parse an exposition body back into ``{(name, labels): value}``.

    Deliberately strict — the CI shape gate and the tests use it as a
    format validator: unknown line shapes raise ``ValueError``, repeated
    ``TYPE`` headers for one family raise, and histogram ``_bucket``
    series are checked for monotone non-decreasing cumulative counts
    ending in ``le="+Inf"``.  Labels are returned as a sorted tuple of
    ``(key, value)`` pairs so results are hashable.
    """
    samples: dict[tuple[str, tuple], float] = {}
    typed: dict[str, str] = {}
    buckets: dict[tuple[str, tuple], list[tuple[float, float]]] = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {line_number}: bad TYPE line: {raw!r}")
            if parts[2] in typed:
                raise ValueError(
                    f"line {line_number}: repeated TYPE for {parts[2]}"
                )
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _METRIC_LINE.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: bad sample line: {raw!r}")
        labels_text = match.group("labels") or ""
        labels = {}
        if labels_text:
            consumed = 0
            for pair in _LABEL_PAIR.finditer(labels_text):
                labels[pair.group(1)] = (
                    pair.group(2)
                    .replace('\\"', '"')
                    .replace("\\n", "\n")
                    .replace("\\\\", "\\")
                )
                consumed += pair.end() - pair.start()
            # Separating commas are all that may remain unmatched.
            leftovers = _LABEL_PAIR.sub("", labels_text).replace(",", "")
            if leftovers.strip():
                raise ValueError(
                    f"line {line_number}: bad label syntax: {raw!r}"
                )
        raw_value = match.group("value")
        if raw_value == "+Inf":
            value = math.inf
        elif raw_value == "-Inf":
            value = -math.inf
        elif raw_value == "NaN":
            value = math.nan
        else:
            value = float(raw_value)
        name = match.group("name")
        key = (name, tuple(sorted(labels.items())))
        if key in samples:
            raise ValueError(f"line {line_number}: duplicate sample {key}")
        samples[key] = value
        if name.endswith("_bucket") and "le" in labels:
            le = labels["le"]
            bound = math.inf if le == "+Inf" else float(le)
            series = tuple(
                sorted(item for item in labels.items() if item[0] != "le")
            )
            buckets.setdefault((name, series), []).append((bound, value))
    for (name, series), pairs in buckets.items():
        pairs.sort()
        if not pairs or pairs[-1][0] != math.inf:
            raise ValueError(f"{name}{series}: missing le=\"+Inf\" bucket")
        cumulative = [count for _, count in pairs]
        if any(b < a for a, b in zip(cumulative, cumulative[1:])):
            raise ValueError(
                f"{name}{series}: bucket counts are not monotone: {cumulative}"
            )
        count_key = (name[: -len("_bucket")] + "_count", series)
        if count_key in samples and samples[count_key] != cumulative[-1]:
            raise ValueError(
                f"{name}{series}: +Inf bucket {cumulative[-1]} != "
                f"_count {samples[count_key]}"
            )
    return samples
