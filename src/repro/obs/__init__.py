"""Observability: request tracing, Prometheus metrics, slow-query log.

Three pieces, all stdlib-only:

* :mod:`repro.obs.trace` — context-var-carried ``Trace``/``Span``
  recording, free when no trace is active;
* :mod:`repro.obs.prometheus` — the ``GET /metrics`` text formatter
  (and the strict parser the tests and CI use to validate it);
* :mod:`repro.obs.flight` — the bounded worst-N slow-query flight
  recorder behind ``GET /debug/slow``.
"""

from repro.obs.flight import (
    DEFAULT_SLOW_LOG_SIZE,
    DEFAULT_SLOW_MS,
    FlightRecorder,
)
from repro.obs.prometheus import parse_prometheus_text, render_metrics
from repro.obs.trace import (
    Span,
    SpanHandle,
    Trace,
    TraceSampler,
    annotate,
    current_span,
    current_trace,
    new_trace_id,
    span,
    use_trace,
)

__all__ = [
    "DEFAULT_SLOW_LOG_SIZE",
    "DEFAULT_SLOW_MS",
    "FlightRecorder",
    "Span",
    "SpanHandle",
    "Trace",
    "TraceSampler",
    "annotate",
    "current_span",
    "current_trace",
    "new_trace_id",
    "parse_prometheus_text",
    "render_metrics",
    "span",
    "use_trace",
]
