"""Request-scoped tracing: cheap spans carried by a context variable.

A :class:`Trace` is one request's tree of timed :class:`Span`\\ s.  The
design constraint, set by the hot-path benchmark gate, is that tracing
must cost *nothing measurable when off*: every instrumentation point in
the serving stack calls :func:`span`, which reads one
:class:`contextvars.ContextVar` and returns a shared no-op singleton
when no trace is active — no allocation, no branching downstream, no
signature changes for the evaluators in between.  Only requests that
asked for a trace (``?trace=1``), or were sampled server-side
(:class:`TraceSampler`), pay for real span objects.

Context propagation rules:

* the HTTP/service entry point creates the :class:`Trace` and activates
  it with :func:`use_trace` (a context manager that sets and restores
  the context variable — safe to nest and safe with ``trace=None``,
  which deactivates tracing for the covered region);
* :func:`span` opens a child of the *current* span (the trace root when
  none is open) and makes it current for the ``with`` body, so nesting
  falls out of lexical structure;
* thread pools do **not** inherit context variables, so fan-out layers
  (the batch executor, the shard scatter pool) re-activate the trace
  explicitly in the worker callable with :func:`use_trace` — or, like
  the shard workers, build a plain span *dict* off-context and let the
  coordinator stitch it into the live tree with :meth:`SpanHandle.attach`.
  Child-list appends are plain ``list.append`` calls, atomic under the
  GIL, so concurrent children from a fan-out are safe without a lock.

Spans serialise to JSON-ready dicts (``to_dict``): name, start offset
relative to the trace start, duration, attributes, children.  Remote
subtrees received over the wire are attached as dicts unchanged, which
is how one sharded query yields a single stitched tree spanning
processes.
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextvars import ContextVar
from typing import Any

__all__ = [
    "Span",
    "SpanHandle",
    "Trace",
    "TraceSampler",
    "annotate",
    "current_span",
    "current_trace",
    "new_trace_id",
    "span",
    "use_trace",
]

#: The active trace for this context (None = tracing off, the default).
_ACTIVE_TRACE: ContextVar["Trace | None"] = ContextVar(
    "repro_trace", default=None
)
#: The innermost open span of the active trace (the root right after
#: activation).  Kept separate from the trace so :func:`span` nesting is
#: one ContextVar get + set, no tree walk.
_CURRENT_SPAN: ContextVar["Span | None"] = ContextVar(
    "repro_span", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (random, collision-unlikely)."""
    return os.urandom(8).hex()


class Span:
    """One timed operation inside a trace.

    ``started`` is the offset in seconds from the owning trace's start
    (so a serialised tree is self-contained); ``seconds`` is the
    duration, set when the span closes (-1.0 while open).  ``children``
    holds nested :class:`Span` objects and raw dicts (remote subtrees
    stitched in by :meth:`SpanHandle.attach`), interleaved.
    """

    __slots__ = ("name", "started", "seconds", "attrs", "children")

    def __init__(self, name: str, started: float = 0.0) -> None:
        self.name = name
        self.started = started
        self.seconds = -1.0
        self.attrs: dict[str, Any] = {}
        self.children: list[Span | dict] = []

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, seconds={self.seconds:.6f}, "
            f"children={len(self.children)})"
        )

    def to_dict(self) -> dict:
        """JSON-ready rendering of this span's subtree."""
        return {
            "name": self.name,
            "started": self.started,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
            "children": [
                child.to_dict() if isinstance(child, Span) else child
                for child in self.children
            ],
        }


class Trace:
    """One request's tree of spans plus its identity.

    ``sampled`` distinguishes server-side sampled traces (recorded to
    the flight recorder but not echoed to the client) from
    client-requested ones.  ``finish`` closes the root; ``to_dict``
    before ``finish`` reports the elapsed time so far, so partially
    complete traces (a batch member's flight-recorder entry) still
    serialise sensibly.
    """

    __slots__ = (
        "trace_id",
        "root",
        "sampled",
        "started_at",
        "_started_perf",
    )

    def __init__(
        self,
        name: str,
        *,
        trace_id: str | None = None,
        sampled: bool = False,
    ) -> None:
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.sampled = sampled
        self.started_at = time.time()
        self._started_perf = time.perf_counter()
        self.root = Span(name, 0.0)

    def __repr__(self) -> str:
        return f"Trace({self.trace_id!r}, root={self.root.name!r})"

    @property
    def elapsed(self) -> float:
        """Seconds since the trace started (live, monotonic)."""
        return time.perf_counter() - self._started_perf

    def finish(self) -> "Trace":
        """Close the root span at the current elapsed time."""
        self.root.seconds = self.elapsed
        return self

    def to_dict(self) -> dict:
        """JSON-ready rendering of the whole trace."""
        document = self.root.to_dict()
        if document["seconds"] < 0.0:
            document["seconds"] = self.elapsed
        return {
            "trace_id": self.trace_id,
            "sampled": self.sampled,
            "started_at": self.started_at,
            **document,
        }


class _NoopHandle:
    """The shared do-nothing span handle returned when tracing is off.

    Every method returns ``self`` (or a harmless constant), so
    instrumentation points never branch on "is tracing on" themselves.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopHandle":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopHandle":
        return self

    def attach(self, child: dict | None) -> "_NoopHandle":
        return self


_NOOP = _NoopHandle()


class SpanHandle:
    """A live span opened by :func:`span` — the ``with`` target.

    ``set(**attrs)`` records attributes; ``attach(dict)`` stitches a
    pre-serialised subtree (a remote worker's span) under this span.
    """

    __slots__ = ("_span", "_trace", "_token")

    def __init__(self, span_obj: Span, trace: Trace) -> None:
        self._span = span_obj
        self._trace = trace
        self._token = None

    def __enter__(self) -> "SpanHandle":
        self._token = _CURRENT_SPAN.set(self._span)
        return self

    def __exit__(self, *exc: object) -> bool:
        self._span.seconds = self._trace.elapsed - self._span.started
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        return False

    def set(self, **attrs: Any) -> "SpanHandle":
        self._span.attrs.update(attrs)
        return self

    def attach(self, child: dict | None) -> "SpanHandle":
        if child is not None:
            self._span.children.append(child)
        return self


def current_trace() -> Trace | None:
    """The active trace, or None when tracing is off."""
    return _ACTIVE_TRACE.get()


def current_span() -> Span | None:
    """The innermost open span of the active trace (None when off)."""
    return _CURRENT_SPAN.get()


def span(name: str, **attrs: Any) -> SpanHandle | _NoopHandle:
    """Open a child span of the current one (no-op when tracing is off).

    The disabled path is the hot one: a single ContextVar read returning
    the shared no-op handle.  With a trace active, the new span is
    appended under the current span (the root when none is open) and
    becomes current for the ``with`` body.
    """
    trace = _ACTIVE_TRACE.get()
    if trace is None:
        return _NOOP
    parent = _CURRENT_SPAN.get()
    if parent is None:
        parent = trace.root
    child = Span(name, trace.elapsed)
    if attrs:
        child.attrs.update(attrs)
    parent.children.append(child)
    return SpanHandle(child, trace)


def annotate(**attrs: Any) -> None:
    """Set attributes on the current span, if any (no-op when off)."""
    current = _CURRENT_SPAN.get()
    if current is None:
        trace = _ACTIVE_TRACE.get()
        if trace is None:
            return
        current = trace.root
    current.attrs.update(attrs)


class use_trace:
    """Context manager activating ``trace`` for the covered region.

    ``use_trace(None)`` deactivates tracing for the region (used by
    layers that must not leak an outer request's trace into unrelated
    work).  This is also the fan-out propagation primitive: a worker
    callable re-activates the request's trace in its own thread, since
    thread pools don't inherit context variables.
    """

    __slots__ = ("_trace", "_trace_token", "_span_token")

    def __init__(self, trace: Trace | None) -> None:
        self._trace = trace
        self._trace_token = None
        self._span_token = None

    def __enter__(self) -> Trace | None:
        self._trace_token = _ACTIVE_TRACE.set(self._trace)
        # Reset the span cursor: the activating context starts at the
        # trace root, never at whatever span an outer context left open.
        self._span_token = _CURRENT_SPAN.set(None)
        return self._trace

    def __exit__(self, *exc: object) -> bool:
        if self._span_token is not None:
            _CURRENT_SPAN.reset(self._span_token)
            self._span_token = None
        if self._trace_token is not None:
            _ACTIVE_TRACE.reset(self._trace_token)
            self._trace_token = None
        return False


class TraceSampler:
    """Server-side probabilistic trace sampling at a fixed rate.

    ``rate`` is the fraction of requests traced without being asked
    (0.0 = never, the default; 1.0 = always).  The zero-rate fast path
    is branch-only — no rng draw — so an unconfigured service pays one
    float compare per request.  Draws are serialised by a lock;
    sampling happens at most once per request, never in a hot loop.
    """

    __slots__ = ("rate", "_rng", "_lock")

    def __init__(self, rate: float = 0.0, seed: int | None = None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        return f"TraceSampler(rate={self.rate})"

    def sample(self) -> bool:
        """True when this request should be traced server-side."""
        rate = self.rate
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        with self._lock:
            return self._rng.random() < rate
