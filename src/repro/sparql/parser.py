"""Recursive-descent parser for the embedded SPARQL subset.

Grammar (keywords case-insensitive, ``WHERE`` optional as in SPARQL)::

    query        := select_query | ask_query
    select_query := SELECT DISTINCT? projection WHERE? group
    ask_query    := ASK WHERE? group
    projection   := '*' | VAR+
    group        := '{' triple (DOT triple?)* '}'
    triple       := term term term
    term         := VAR | IRI | PNAME | STRING

Full IRIs are shortened through the prefix table of
:mod:`repro.graph.rdf` so that constants match the prefixed-name spelling
used by the graph and the generators (e.g. ``<http://...#Course>`` and
``ub:Course`` parse to the same constant).
"""

from __future__ import annotations

from repro.exceptions import SparqlSyntaxError
from repro.graph.rdf import shorten
from repro.sparql.ast import AskQuery, Query, SelectQuery, Term, TriplePattern, Var
from repro.sparql.lexer import Token, tokenize

__all__ = ["parse_query", "parse_select", "parse_patterns"]


def parse_query(text: str) -> Query:
    """Parse a SELECT or ASK query."""
    return _Parser(text).parse_query()


def parse_select(text: str) -> SelectQuery:
    """Parse a query that must be a SELECT (constraints are SELECTs)."""
    query = parse_query(text)
    if not isinstance(query, SelectQuery):
        raise SparqlSyntaxError("expected a SELECT query")
    return query


def parse_patterns(text: str) -> tuple[TriplePattern, ...]:
    """Parse a bare ``{ ... }`` group or pattern list (testing helper)."""
    stripped = text.strip()
    if not stripped.startswith("{"):
        stripped = "{" + stripped + "}"
    parser = _Parser(stripped)
    patterns = parser._parse_group()
    parser._expect("EOF")
    return patterns


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens: list[Token] = tokenize(text)
        self._index = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._peek()
        if token.kind != kind or (value is not None and token.value != value):
            wanted = value or kind
            raise SparqlSyntaxError(
                f"expected {wanted}, found {token.value or token.kind!r}",
                token.position,
            )
        return self._advance()

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        token = self._peek()
        if token.kind == kind and (value is None or token.value == value):
            return self._advance()
        return None

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------

    def parse_query(self) -> Query:
        token = self._peek()
        if token.kind != "KEYWORD":
            raise SparqlSyntaxError(
                f"query must start with SELECT or ASK, found {token.value!r}",
                token.position,
            )
        if token.value == "SELECT":
            return self._parse_select()
        if token.value == "ASK":
            return self._parse_ask()
        raise SparqlSyntaxError(
            f"query must start with SELECT or ASK, found {token.value}",
            token.position,
        )

    def _parse_select(self) -> SelectQuery:
        self._expect("KEYWORD", "SELECT")
        distinct = self._accept("KEYWORD", "DISTINCT") is not None
        projection: list[Var] = []
        if self._accept("STAR") is None:
            while True:
                token = self._accept("VAR")
                if token is None:
                    break
                projection.append(Var(token.value))
            if not projection:
                token = self._peek()
                raise SparqlSyntaxError(
                    "SELECT needs at least one variable or '*'", token.position
                )
        self._accept("KEYWORD", "WHERE")
        patterns = self._parse_group()
        self._expect("EOF")
        query = SelectQuery(
            projection=tuple(projection), patterns=patterns, distinct=distinct
        )
        pattern_vars = set(query.variables())
        missing = [v for v in query.projection if v not in pattern_vars]
        if missing:
            raise SparqlSyntaxError(
                "projected variable(s) not used in the pattern: "
                + ", ".join(str(v) for v in missing)
            )
        return query

    def _parse_ask(self) -> AskQuery:
        self._expect("KEYWORD", "ASK")
        self._accept("KEYWORD", "WHERE")
        patterns = self._parse_group()
        self._expect("EOF")
        return AskQuery(patterns=patterns)

    def _parse_group(self) -> tuple[TriplePattern, ...]:
        self._expect("LBRACE")
        patterns: list[TriplePattern] = []
        while self._peek().kind not in ("RBRACE", "EOF"):
            subject = self._parse_term()
            predicate = self._parse_term()
            obj = self._parse_term()
            patterns.append(TriplePattern(subject, predicate, obj))
            if self._accept("DOT") is None:
                break  # final triple may omit the dot
        self._expect("RBRACE")
        if not patterns:
            raise SparqlSyntaxError("empty graph pattern")
        return tuple(patterns)

    def _parse_term(self) -> Term:
        token = self._peek()
        if token.kind == "VAR":
            self._advance()
            return Var(token.value)
        if token.kind == "IRI":
            self._advance()
            return shorten(token.value)
        if token.kind in ("PNAME", "STRING"):
            self._advance()
            return token.value
        raise SparqlSyntaxError(
            f"expected a term, found {token.value or token.kind!r}", token.position
        )
