"""Basic-graph-pattern evaluation over a :class:`KnowledgeGraph`.

The evaluator is an exact backtracking join: at every recursion step it
picks the remaining triple pattern with the *cheapest actual candidate
set* given the bindings accumulated so far (bound subject + constant
predicate → one adjacency list; constant predicate only → per-label edge
list; and so on).  Because selection is dynamic, the classic worst cases
of static join orders (cartesian explosions on star patterns) do not
arise for the constraint shapes used in the paper (Table 3, Section 6.2).

Variables range over vertices when they occur in subject/object position
and over labels when they occur in predicate position; one variable may
not do both (checked at compile time — ids of the two spaces are
unrelated ints).

Bindings map variable *names* (without ``?``) to vertex ids / label ids.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.exceptions import SparqlEvaluationError
from repro.graph.labeled_graph import KnowledgeGraph
from repro.graph.labels import iter_mask_bits
from repro.sparql.ast import TriplePattern, Var

__all__ = ["CompiledPattern", "compile_patterns", "evaluate_bgp", "bgp_is_satisfiable"]

_VERTEX = "vertex"
_LABEL = "label"


class CompiledPattern:
    """One triple pattern with constants resolved to graph ids.

    Each slot is either ``("id", int)`` or ``("var", name)``.  A pattern
    whose constant is absent from the graph is *unsatisfiable*, which
    makes the whole BGP empty.
    """

    __slots__ = ("subject", "predicate", "object", "unsatisfiable")

    def __init__(self, graph: KnowledgeGraph, pattern: TriplePattern) -> None:
        self.unsatisfiable = False
        self.subject = self._compile_vertex(graph, pattern.subject)
        self.predicate = self._compile_label(graph, pattern.predicate)
        self.object = self._compile_vertex(graph, pattern.object)

    def _compile_vertex(self, graph: KnowledgeGraph, term) -> tuple[str, object]:
        if isinstance(term, Var):
            return ("var", term.name)
        if graph.has_vertex(term):
            return ("id", graph.vid(term))
        self.unsatisfiable = True
        return ("id", -1)

    def _compile_label(self, graph: KnowledgeGraph, term) -> tuple[str, object]:
        if isinstance(term, Var):
            return ("var", term.name)
        if term in graph.labels:
            return ("id", graph.labels.id_of(term))
        self.unsatisfiable = True
        return ("id", -1)

    def variables_with_roles(self) -> list[tuple[str, str]]:
        """``(variable name, role)`` pairs; role is ``vertex`` or ``label``."""
        roles: list[tuple[str, str]] = []
        for slot, role in (
            (self.subject, _VERTEX),
            (self.predicate, _LABEL),
            (self.object, _VERTEX),
        ):
            kind, value = slot
            if kind == "var":
                roles.append((value, role))
        return roles


def compile_patterns(
    graph: KnowledgeGraph, patterns: tuple[TriplePattern, ...] | list[TriplePattern]
) -> list[CompiledPattern] | None:
    """Compile a BGP; ``None`` means provably empty (missing constant).

    Raises :class:`SparqlEvaluationError` if a variable is used in both
    vertex and predicate position.
    """
    compiled = [CompiledPattern(graph, p) for p in patterns]
    roles: dict[str, str] = {}
    for pattern in compiled:
        for name, role in pattern.variables_with_roles():
            previous = roles.setdefault(name, role)
            if previous != role:
                raise SparqlEvaluationError(
                    f"variable ?{name} is used both as a vertex and as a label"
                )
    if any(p.unsatisfiable for p in compiled):
        return None
    return compiled


def evaluate_bgp(
    graph: KnowledgeGraph,
    patterns: tuple[TriplePattern, ...] | list[TriplePattern],
    bindings: dict[str, int] | None = None,
    limit: int | None = None,
) -> Iterator[dict[str, int]]:
    """Yield all solution bindings of the BGP (ids), up to ``limit``.

    ``bindings`` pre-binds variables (used by ``SCck``: bind ``?x`` to a
    candidate vertex and test satisfiability).  The yielded dicts are
    fresh copies safe to retain.
    """
    compiled = compile_patterns(graph, patterns)
    if compiled is None:
        return
    state = dict(bindings) if bindings else {}
    remaining = list(compiled)
    count = 0
    for solution in _match(graph, remaining, state):
        yield dict(solution)
        count += 1
        if limit is not None and count >= limit:
            return


def bgp_is_satisfiable(
    graph: KnowledgeGraph,
    patterns: tuple[TriplePattern, ...] | list[TriplePattern],
    bindings: dict[str, int] | None = None,
) -> bool:
    """True iff the BGP has at least one solution (short-circuits)."""
    for _ in evaluate_bgp(graph, patterns, bindings, limit=1):
        return True
    return False


# ----------------------------------------------------------------------
# backtracking join
# ----------------------------------------------------------------------


def _match(
    graph: KnowledgeGraph,
    remaining: list[CompiledPattern],
    bindings: dict[str, int],
) -> Iterator[dict[str, int]]:
    if not remaining:
        yield bindings
        return
    index = _cheapest_pattern(graph, remaining, bindings)
    pattern = remaining[index]
    rest = remaining[:index] + remaining[index + 1 :]
    for new_vars in _pattern_candidates(graph, pattern, bindings):
        for name, value in new_vars:
            bindings[name] = value
        yield from _match(graph, rest, bindings)
        for name, _ in new_vars:
            del bindings[name]


def _slot_value(slot: tuple[str, object], bindings: dict[str, int]) -> int | None:
    kind, value = slot
    if kind == "id":
        return value  # type: ignore[return-value]
    return bindings.get(value)  # type: ignore[arg-type]


def _estimate_cost(
    graph: KnowledgeGraph, pattern: CompiledPattern, bindings: dict[str, int]
) -> int:
    s = _slot_value(pattern.subject, bindings)
    p = _slot_value(pattern.predicate, bindings)
    o = _slot_value(pattern.object, bindings)
    if s is not None and p is not None and o is not None:
        return 0  # existence check
    if s is not None and p is not None:
        # Label-presence pre-test: on a frozen graph this is one bitmask
        # AND, so provably-empty patterns cost 0 and are picked first —
        # the join backtracks immediately instead of expanding siblings.
        if not graph.has_out_label(s, p):
            return 0
        return len(graph.out_by_label(s, p))
    if o is not None and p is not None:
        if not graph.has_in_label(o, p):
            return 0
        return len(graph.in_by_label(o, p))
    if s is not None and o is not None:
        return graph.out_degree(s)  # enumerate labels between two vertices
    if s is not None:
        return graph.out_degree(s)
    if o is not None:
        return graph.in_degree(o)
    if p is not None:
        return graph.label_frequency(p)
    return graph.num_edges  # fully unbound: scan everything


def _cheapest_pattern(
    graph: KnowledgeGraph,
    remaining: list[CompiledPattern],
    bindings: dict[str, int],
) -> int:
    best_index = 0
    best_cost = None
    for index, pattern in enumerate(remaining):
        cost = _estimate_cost(graph, pattern, bindings)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_index = index
            if cost == 0:
                break
    return best_index


def _pattern_candidates(
    graph: KnowledgeGraph,
    pattern: CompiledPattern,
    bindings: dict[str, int],
) -> Iterator[list[tuple[str, int]]]:
    """Yield lists of *new* variable bindings that satisfy the pattern.

    Repeated variables inside one pattern (``?x l ?x``) are handled by
    binding the first occurrence and letting the consistency check on the
    second occurrence filter candidates.
    """
    s = _slot_value(pattern.subject, bindings)
    p = _slot_value(pattern.predicate, bindings)
    o = _slot_value(pattern.object, bindings)
    s_var = pattern.subject[1] if pattern.subject[0] == "var" and s is None else None
    p_var = pattern.predicate[1] if pattern.predicate[0] == "var" and p is None else None
    o_var = pattern.object[1] if pattern.object[0] == "var" and o is None else None

    # Same unbound variable in subject and object position.
    same_so = s_var is not None and s_var == o_var

    if s is not None and p is not None and o is not None:
        if graph.has_edge(s, p, o):
            yield []
        return

    if s is not None and p is not None:  # o unbound
        # On a frozen graph this is an O(1) mask reject or a contiguous
        # CSR label-slice — the hottest shape SCck produces (?x bound).
        for t in graph.out_by_label(s, p):
            yield [(o_var, t)]  # type: ignore[list-item]
        return

    if o is not None and p is not None:  # s unbound
        for src in graph.in_by_label(o, p):
            yield [(s_var, src)]  # type: ignore[list-item]
        return

    if s is not None and o is not None:  # p unbound
        # One edge-set probe per distinct label on ``s`` instead of a
        # scan of every out-edge.
        for label_id in iter_mask_bits(graph.labels_between(s, o)):
            yield [(p_var, label_id)]  # type: ignore[list-item]
        return

    if s is not None:  # p and o unbound
        for label_id, t in graph.out_edges(s):
            if p_var is not None and o_var is not None:
                yield [(p_var, label_id), (o_var, t)]
            elif o_var is not None:
                yield [(o_var, t)]
            else:
                yield [(p_var, label_id)]  # type: ignore[list-item]
        return

    if o is not None:  # p and s unbound
        for label_id, src in graph.in_edges(o):
            if p_var is not None and s_var is not None:
                yield [(p_var, label_id), (s_var, src)]
            elif s_var is not None:
                yield [(s_var, src)]
            else:
                yield [(p_var, label_id)]  # type: ignore[list-item]
        return

    if p is not None:  # s and o unbound
        for src, t in graph.edges_with_label(p):
            if same_so:
                if src == t:
                    yield [(s_var, src)]  # type: ignore[list-item]
            elif s_var is not None and o_var is not None:
                yield [(s_var, src), (o_var, t)]
            else:  # pragma: no cover - both were bound, handled above
                yield []
        return

    # Everything unbound: scan all edges.
    for src, label_id, t in graph.edges():
        new: list[tuple[str, int]] = []
        if same_so:
            if src != t:
                continue
            new.append((s_var, src))  # type: ignore[arg-type]
        else:
            if s_var is not None:
                new.append((s_var, src))
            if o_var is not None:
                new.append((o_var, t))
        if p_var is not None:
            new.append((p_var, label_id))
        yield new
