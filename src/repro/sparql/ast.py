"""Abstract syntax for the embedded SPARQL subset.

The engine supports exactly what the paper needs (Section 2 and Table 3):
``SELECT`` / ``ASK`` queries over a basic graph pattern (a conjunction of
triple patterns).  Substructure constraints are such patterns with a
designated variable ``?x``; S1–S5 of Table 3 and the randomly generated
constraints of Section 6.2 all fall in this fragment.

Terms are either :class:`Var` or plain constants.  Constants are vertex
names / label names as they appear in the graph (prefixed-name spelling);
the parser shortens full IRIs into this spelling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

__all__ = ["Var", "Term", "TriplePattern", "SelectQuery", "AskQuery", "Query"]


@dataclass(frozen=True, order=True)
class Var:
    """A SPARQL variable, e.g. ``?x`` (name stored without the ``?``)."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


#: A term in a triple pattern: variable or constant vertex/label name.
Term = Union[Var, str]


@dataclass(frozen=True)
class TriplePattern:
    """One pattern ``subject predicate object``.

    Predicates may also be variables, although the paper's constraints
    always use constant predicates (``l ∈ 𝕃`` in Definition 2.2).
    """

    subject: Term
    predicate: Term
    object: Term

    def variables(self) -> tuple[Var, ...]:
        """The distinct variables of this pattern, in position order."""
        seen: list[Var] = []
        for term in (self.subject, self.predicate, self.object):
            if isinstance(term, Var) and term not in seen:
                seen.append(term)
        return tuple(seen)

    def __str__(self) -> str:
        def fmt(term: Term) -> str:
            return str(term) if isinstance(term, Var) else f"<{term}>"

        return f"{fmt(self.subject)} {fmt(self.predicate)} {fmt(self.object)} ."


@dataclass(frozen=True)
class SelectQuery:
    """``SELECT [DISTINCT] ?v... WHERE { patterns }``.

    An empty ``projection`` means ``SELECT *`` (all variables).
    """

    projection: tuple[Var, ...]
    patterns: tuple[TriplePattern, ...]
    distinct: bool = False

    def variables(self) -> tuple[Var, ...]:
        """All distinct variables appearing in the patterns."""
        seen: list[Var] = []
        for pattern in self.patterns:
            for var in pattern.variables():
                if var not in seen:
                    seen.append(var)
        return tuple(seen)

    def effective_projection(self) -> tuple[Var, ...]:
        """The projected variables (pattern variables for ``SELECT *``)."""
        return self.projection if self.projection else self.variables()

    def __str__(self) -> str:
        head = "SELECT "
        if self.distinct:
            head += "DISTINCT "
        head += " ".join(str(v) for v in self.projection) if self.projection else "*"
        body = " ".join(str(p) for p in self.patterns)
        return f"{head} WHERE {{ {body} }}"


@dataclass(frozen=True)
class AskQuery:
    """``ASK WHERE { patterns }`` — satisfiability only."""

    patterns: tuple[TriplePattern, ...]

    def variables(self) -> tuple[Var, ...]:
        """All distinct variables appearing in the patterns."""
        seen: list[Var] = []
        for pattern in self.patterns:
            for var in pattern.variables():
                if var not in seen:
                    seen.append(var)
        return tuple(seen)

    def __str__(self) -> str:
        body = " ".join(str(p) for p in self.patterns)
        return f"ASK WHERE {{ {body} }}"


Query = Union[SelectQuery, AskQuery]
