"""Brute-force BGP matcher — the reference oracle for evaluator tests.

Enumerates the full cross product of vertex (and label) assignments for
all variables and filters by edge membership.  Exponential, only usable
on tiny graphs, deliberately written with no shared code with the real
evaluator so that agreement between the two is meaningful evidence.
"""

from __future__ import annotations

from itertools import product

from repro.exceptions import SparqlEvaluationError
from repro.graph.labeled_graph import KnowledgeGraph
from repro.sparql.ast import TriplePattern, Var

__all__ = ["bruteforce_bgp"]


def bruteforce_bgp(
    graph: KnowledgeGraph,
    patterns: list[TriplePattern] | tuple[TriplePattern, ...],
    bindings: dict[str, int] | None = None,
) -> list[dict[str, int]]:
    """All solutions of the BGP by exhaustive enumeration (sorted)."""
    vertex_vars: list[str] = []
    label_vars: list[str] = []
    for pattern in patterns:
        for term, is_label in (
            (pattern.subject, False),
            (pattern.predicate, True),
            (pattern.object, False),
        ):
            if not isinstance(term, Var):
                continue
            bucket = label_vars if is_label else vertex_vars
            other = vertex_vars if is_label else label_vars
            if term.name in other:
                raise SparqlEvaluationError(
                    f"variable ?{term.name} used as vertex and label"
                )
            if term.name not in bucket:
                bucket.append(term.name)

    fixed = dict(bindings) if bindings else {}
    free_vertex_vars = [v for v in vertex_vars if v not in fixed]
    free_label_vars = [v for v in label_vars if v not in fixed]

    solutions: list[dict[str, int]] = []
    vertex_ids = list(graph.vertices())
    label_ids = list(range(graph.num_labels))
    vertex_choices = product(vertex_ids, repeat=len(free_vertex_vars))
    for vertex_assignment in vertex_choices:
        for label_assignment in product(label_ids, repeat=len(free_label_vars)):
            assignment = dict(fixed)
            assignment.update(zip(free_vertex_vars, vertex_assignment))
            assignment.update(zip(free_label_vars, label_assignment))
            if _satisfies(graph, patterns, assignment):
                solutions.append(assignment)
    solutions.sort(key=lambda s: sorted(s.items()))
    return solutions


def _satisfies(
    graph: KnowledgeGraph,
    patterns,
    assignment: dict[str, int],
) -> bool:
    for pattern in patterns:
        s = _resolve(graph, pattern.subject, assignment, is_label=False)
        p = _resolve(graph, pattern.predicate, assignment, is_label=True)
        o = _resolve(graph, pattern.object, assignment, is_label=False)
        if s is None or p is None or o is None:
            return False
        if not graph.has_edge(s, p, o):
            return False
    return True


def _resolve(graph: KnowledgeGraph, term, assignment: dict[str, int], is_label: bool):
    if isinstance(term, Var):
        return assignment.get(term.name)
    if is_label:
        if term in graph.labels:
            return graph.labels.id_of(term)
        return None
    if graph.has_vertex(term):
        return graph.vid(term)
    return None
