"""Tokeniser for the embedded SPARQL subset.

Token kinds::

    KEYWORD   SELECT | ASK | WHERE | DISTINCT   (case-insensitive)
    VAR       ?name
    IRI       <http://...>            (angle-bracketed IRI)
    PNAME     ub:Course, rdf:type     (prefixed name)
    STRING    'Research12', "x y"     (quoted literal)
    STAR      *
    LBRACE    {
    RBRACE    }
    DOT       .
    EOF

The grammar is small enough that a hand-rolled scanner is clearer than a
regex table, and it reports exact offsets on bad input.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SparqlSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset({"SELECT", "ASK", "WHERE", "DISTINCT"})

_PUNCT = {"{": "LBRACE", "}": "RBRACE", ".": "DOT", "*": "STAR"}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset (for error messages)."""

    kind: str
    value: str
    position: int


def tokenize(text: str) -> list[Token]:
    """Tokenise ``text``; raises :class:`SparqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "#":  # comment to end of line
            newline = text.find("\n", index)
            index = length if newline == -1 else newline + 1
            continue
        if char in _PUNCT:
            tokens.append(Token(_PUNCT[char], char, index))
            index += 1
            continue
        if char == "?" or char == "$":
            end = index + 1
            while end < length and (text[end].isalnum() or text[end] in "_"):
                end += 1
            if end == index + 1:
                raise SparqlSyntaxError("empty variable name", index)
            tokens.append(Token("VAR", text[index + 1 : end], index))
            index = end
            continue
        if char == "<":
            close = text.find(">", index)
            if close == -1:
                raise SparqlSyntaxError("unterminated IRI", index)
            tokens.append(Token("IRI", text[index + 1 : close], index))
            index = close + 1
            continue
        if char in "'\"":
            close = text.find(char, index + 1)
            if close == -1:
                raise SparqlSyntaxError("unterminated string literal", index)
            tokens.append(Token("STRING", text[index + 1 : close], index))
            index = close + 1
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] in "_:.-"):
                end += 1
            # A trailing '.' is the triple terminator, not part of the name.
            while end > index and text[end - 1] == ".":
                end -= 1
            word = text[index:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, index))
            elif ":" in word:
                tokens.append(Token("PNAME", word, index))
            else:
                # Bare identifier: treated as a plain vertex/label name.
                tokens.append(Token("PNAME", word, index))
            index = end
            continue
        raise SparqlSyntaxError(f"unexpected character {char!r}", index)
    tokens.append(Token("EOF", "", length))
    return tokens
