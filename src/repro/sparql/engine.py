"""High-level SPARQL engine facade.

This is the component the paper assumes as a substrate for UIS* and INS
(Section 4: "we could obtain V(S, G) by implementing SPARQL engines").
The engine wraps one graph, caches parsed queries, and exposes:

* :meth:`SparqlEngine.select` — solutions with vertex/label *names*;
* :meth:`SparqlEngine.select_ids` — solutions with raw ids (algorithms);
* :meth:`SparqlEngine.ask` — satisfiability, optionally with pre-bound
  variables (this is ``SCck`` when ``?x`` is bound to a candidate);
* :meth:`SparqlEngine.satisfying_vertices` — the paper's ``V(S, G)``.

The paper's engine ([20]) has recall knobs ``UNIMax``/``Max``/``Eδ``; the
experiments set them so the full exact answer set is returned, which is
exactly what this exact evaluator produces (see DESIGN.md §4).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import SparqlEvaluationError
from repro.graph.labeled_graph import KnowledgeGraph
from repro.sparql.ast import AskQuery, SelectQuery, TriplePattern, Var
from repro.sparql.evaluator import bgp_is_satisfiable, evaluate_bgp
from repro.sparql.parser import parse_query

__all__ = ["SparqlEngine"]

_Patterns = tuple[TriplePattern, ...]


class SparqlEngine:
    """Exact SELECT/ASK evaluation over one :class:`KnowledgeGraph`."""

    def __init__(self, graph: KnowledgeGraph) -> None:
        self.graph = graph
        self._parse_cache: dict[str, SelectQuery | AskQuery] = {}

    def __repr__(self) -> str:
        return f"SparqlEngine({self.graph!r})"

    # ------------------------------------------------------------------
    # parsing
    # ------------------------------------------------------------------

    def _as_query(self, query: str | SelectQuery | AskQuery) -> SelectQuery | AskQuery:
        if isinstance(query, (SelectQuery, AskQuery)):
            return query
        cached = self._parse_cache.get(query)
        if cached is None:
            cached = parse_query(query)
            self._parse_cache[query] = cached
        return cached

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def select_ids(
        self,
        query: str | SelectQuery,
        bindings: dict[str, int] | None = None,
        limit: int | None = None,
    ) -> list[dict[str, int]]:
        """Solutions projected to the SELECT variables, as ids.

        ``DISTINCT`` is honoured after projection, as in SPARQL.
        """
        parsed = self._as_query(query)
        if not isinstance(parsed, SelectQuery):
            raise SparqlEvaluationError("select_ids needs a SELECT query")
        projection = [var.name for var in parsed.effective_projection()]
        results: list[dict[str, int]] = []
        seen: set[tuple[int, ...]] = set()
        for solution in evaluate_bgp(self.graph, parsed.patterns, bindings):
            row = {name: solution[name] for name in projection}
            if parsed.distinct:
                key = tuple(row[name] for name in projection)
                if key in seen:
                    continue
                seen.add(key)
            results.append(row)
            if limit is not None and len(results) >= limit:
                break
        return results

    def select(
        self,
        query: str | SelectQuery,
        bindings: dict[str, int] | None = None,
        limit: int | None = None,
    ) -> list[dict[str, object]]:
        """Like :meth:`select_ids` but values converted to names.

        Variables in predicate position decode through the label table,
        all others through the vertex table.
        """
        parsed = self._as_query(query)
        if not isinstance(parsed, SelectQuery):
            raise SparqlEvaluationError("select needs a SELECT query")
        label_vars = _label_position_variables(parsed.patterns)
        rows = self.select_ids(parsed, bindings, limit)
        decoded: list[dict[str, object]] = []
        for row in rows:
            decoded.append(
                {
                    name: (
                        self.graph.label_name(value)
                        if name in label_vars
                        else self.graph.name_of(value)
                    )
                    for name, value in row.items()
                }
            )
        return decoded

    def ask(
        self,
        query: str | AskQuery | SelectQuery | _Patterns | list[TriplePattern],
        bindings: dict[str, int] | None = None,
    ) -> bool:
        """Satisfiability of a query or bare pattern list."""
        if isinstance(query, (tuple, list)):
            return bgp_is_satisfiable(self.graph, query, bindings)
        parsed = self._as_query(query)
        return bgp_is_satisfiable(self.graph, parsed.patterns, bindings)

    # ------------------------------------------------------------------
    # the paper's V(S, G)
    # ------------------------------------------------------------------

    def satisfying_vertices(
        self,
        query: str | SelectQuery,
        variable: str = "x",
    ) -> list[int]:
        """``V(S, G)``: distinct ids of ``?variable`` over all solutions.

        Results are returned as a list in first-solution order — the
        paper treats the elements of ``V(S, G)`` as *disordered*
        (Section 4), and UIS* consumes them in whatever order the engine
        produced; INS re-orders them with its priority heap.
        """
        parsed = self._as_query(query)
        if not isinstance(parsed, SelectQuery):
            raise SparqlEvaluationError("satisfying_vertices needs a SELECT query")
        names = [var.name for var in parsed.effective_projection()]
        if variable not in names:
            raise SparqlEvaluationError(
                f"?{variable} is not projected by the constraint query"
            )
        ordered: list[int] = []
        seen: set[int] = set()
        for solution in evaluate_bgp(self.graph, parsed.patterns):
            value = solution[variable]
            if value not in seen:
                seen.add(value)
                ordered.append(value)
        return ordered


def _label_position_variables(patterns: Iterable[TriplePattern]) -> set[str]:
    """Names of variables that occur in predicate position."""
    names: set[str] = set()
    for pattern in patterns:
        if isinstance(pattern.predicate, Var):
            names.add(pattern.predicate.name)
    return names
