"""Embedded SPARQL engine: SELECT/ASK over basic graph patterns."""

from repro.sparql.ast import AskQuery, Query, SelectQuery, Term, TriplePattern, Var
from repro.sparql.engine import SparqlEngine
from repro.sparql.evaluator import bgp_is_satisfiable, evaluate_bgp
from repro.sparql.parser import parse_patterns, parse_query, parse_select

__all__ = [
    "AskQuery",
    "Query",
    "SelectQuery",
    "SparqlEngine",
    "Term",
    "TriplePattern",
    "Var",
    "bgp_is_satisfiable",
    "evaluate_bgp",
    "parse_patterns",
    "parse_query",
    "parse_select",
]
