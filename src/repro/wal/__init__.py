"""Durable updates and read replication for the query service.

The missing piece between PR 5's epoch-swapped live updates and an
operable deployment: updates lived only in memory, so a restart lost
every acknowledged ``POST /edges`` batch.  This package adds

* :class:`~repro.wal.log.UpdateWal` / :class:`~repro.wal.log.TenantWal`
  — a per-tenant write-ahead log of validated update batches (inserts
  *and* removals), JSONL segments with fsynced appends plus atomic
  compaction snapshots, every record stamped with the epoch id and
  content fingerprint it produced;
* :func:`recover_service` — replay-on-startup (``serve --wal DIR``):
  rebuild the pre-crash service from the newest snapshot plus the log
  tail, *proving* reconvergence by checking each replayed epoch's
  fingerprint;
* :class:`~repro.wal.follower.WalFollower` — the same log as a
  replication carrier (``serve --follow DIR``): a read-only replica
  tails the directory, republishes the leader's epochs, and exposes its
  lag through ``/healthz`` and ``/metrics``.

See :mod:`repro.wal.log` for the on-disk layout and the ordering
contract that makes an acknowledged batch durable.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.graph.csr import freeze_graph
from repro.index.local_index import build_local_index
from repro.service.app import QueryService
from repro.wal.follower import DEFAULT_POLL_INTERVAL, WalFollower
from repro.wal.log import (
    DEFAULT_COMPACT_EVERY,
    TenantWal,
    UpdateWal,
    WalRecord,
    graph_from_snapshot,
    snapshot_document,
)

__all__ = [
    "DEFAULT_COMPACT_EVERY",
    "DEFAULT_POLL_INTERVAL",
    "TenantWal",
    "UpdateWal",
    "WalFollower",
    "WalRecord",
    "graph_from_snapshot",
    "recover_service",
    "snapshot_document",
]


def recover_service(
    wal: TenantWal,
    *,
    graph_path: str | Path,
    index_path: str | Path | None = None,
    landmark_count: int | None = None,
    seed: int = 0,
    attach: bool = True,
    service_cls: type[QueryService] = QueryService,
    **service_kwargs: Any,
) -> tuple[QueryService, dict]:
    """Rebuild a service to the WAL's tip; returns ``(service, replay)``.

    The base state is the newest compaction snapshot when one exists —
    its graph preserves vertex/label ids, so the service adopts its
    epoch id and fingerprint via :meth:`QueryService.reset_epoch` — and
    otherwise the deployment's base TSV at epoch 0, exactly the state
    the log's first record was written against.  Remaining records then
    replay through the ordinary :meth:`~QueryService.apply_updates`
    path, each one verified against its logged epoch and fingerprint
    (:meth:`TenantWal.replay_into`).

    When serving indexed (``index_path`` given) *and* recovering from a
    snapshot, the index is rebuilt in memory over the snapshot graph
    rather than loaded from disk — the persisted index file describes
    the base TSV, not the log's epoch-N graph, and is left untouched.
    Without a snapshot the on-disk index is valid for the base TSV and
    loads normally; replay's per-region repair then carries it forward.

    ``attach=True`` (the default) attaches the log to the recovered
    service so subsequent updates append — a leader.  Followers recover
    with ``attach=False`` and tail instead.

    The ``replay`` dict reports ``applied`` / ``skipped`` record counts,
    the final ``epoch`` and whether a ``truncated_tail`` (torn final
    append) was tolerated.

    ``service_cls`` chooses the topology the log replays into —
    :class:`~repro.shard.service.ShardedQueryService` makes recovery
    *sharded*: the snapshot adoption (:meth:`~QueryService.reset_epoch`)
    and every replayed batch re-cut and re-push worker slices, so the
    fleet converges to the logged epoch right along with the
    coordinator.  Extra keywords (``shards=...``) pass through to the
    constructor.
    """
    loaded = wal.load_snapshot()
    if loaded is None:
        service = service_cls.from_files(
            graph_path,
            index_path,
            landmark_count=landmark_count,
            seed=seed,
            **service_kwargs,
        )
    else:
        graph, epoch, fingerprint = loaded
        frozen = freeze_graph(graph)
        index = None
        if index_path is not None:
            index = build_local_index(frozen, k=landmark_count, rng=seed)
        service = service_cls(frozen, index, seed=seed, **service_kwargs)
        service.reset_epoch(epoch, expected_fingerprint=fingerprint)
    replay = wal.replay_into(service)
    if attach:
        service.attach_wal(wal)
    return service, replay
