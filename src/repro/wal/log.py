"""The durable update log: JSONL segments + compaction snapshots.

Layout — one directory per tenant under the WAL root::

    <root>/<tenant>/
        snapshot.json          # newest compaction snapshot (atomic JSON)
        wal-000000000001.log   # JSONL segments, named by first epoch
        wal-000000000042.log

Each segment line is one record::

    {"seq": 7, "epoch": 42, "fingerprint": "9f3c...", "ts": 1.7e9,
     "edges": [["u", "knows", "v", "add"], ["u", "old", "w", "remove"]]}

``epoch`` is the serving epoch the batch *produced* and ``fingerprint``
the graph's content digest at that epoch
(:meth:`~repro.graph.labeled_graph.KnowledgeGraph.content_fingerprint`),
so replay does not merely re-apply edits — it *proves* reconvergence:
after applying a record the rebuilt graph's digest must equal the
recorded one, or replay refuses
(:class:`~repro.exceptions.WalReplayError`) instead of silently serving
a diverged graph.  Determinism makes that check meaningful: vertex and
label interning order is a function of batch order alone, so replaying
the same records over the same base graph reproduces identical ids and
therefore identical fingerprints.

Ordering contract (see
:meth:`~repro.service.app.QueryService.apply_updates`): a record is
appended — and fsynced — *after* its epoch is published and *before*
the client's ack.  An acknowledged batch is always durable; a crash
between publish and append can only lose a batch whose ack never left,
giving at-most-once semantics with no torn state.  No-op batches don't
bump the epoch and are never appended, so consecutive records always
step the epoch by exactly one — which is what lets replay detect a
missing segment as a gap.

Compaction bounds restart cost: every ``compact_every`` appended records
the current graph is written to ``snapshot.json`` (atomically and
durably, via :func:`~repro.utils.persist.atomic_write_json`) and every
segment whose records are all covered by the snapshot is deleted.  The
two steps are deliberately ordered snapshot-then-delete: a crash between
them leaves extra segments whose records replay simply skips (their
epochs are ≤ the snapshot's).  The snapshot stores vertex names, label
names and edge id-triples *in id order*, so rebuilding interns
everything identically and the fingerprint chain stays intact.

A torn final append (power loss mid-line) shows up as a partial last
line in the newest segment; readers tolerate exactly that — a writer
truncates it before its first append, and anything malformed elsewhere
raises :class:`~repro.exceptions.WalCorruptionError`.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import WalCorruptionError, WalReplayError
from repro.graph.csr import base_graph
from repro.graph.labeled_graph import KnowledgeGraph
from repro.utils.persist import atomic_write_json, fsync_directory

__all__ = [
    "DEFAULT_COMPACT_EVERY",
    "TenantWal",
    "UpdateWal",
    "WalRecord",
    "graph_from_snapshot",
    "snapshot_document",
]

#: Compact after this many appended records by default: snapshots stay
#: frequent enough to bound replay, rare enough that their O(|V| + |E|)
#: cost amortises to ~nothing per batch.
DEFAULT_COMPACT_EVERY = 256

#: On-disk format of both segments' records and ``snapshot.json``.
_WAL_VERSION = 1

_SNAPSHOT_NAME = "snapshot.json"
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record (one acknowledged ``/edges`` batch)."""

    seq: int
    epoch: int
    fingerprint: str
    ts: float
    edges: tuple[tuple[str, str, str, str], ...]


def snapshot_document(
    graph: KnowledgeGraph, *, tenant: str, epoch: int, fingerprint: str
) -> dict:
    """The JSON compaction snapshot for ``graph`` at ``epoch``.

    Vertices and labels are listed *in id order* and edges as id
    triples, so :func:`graph_from_snapshot` re-interns everything with
    identical ids — the property the fingerprint chain depends on.  The
    RDFS schema is not persisted (it is derivable from the TSV the
    deployment started from, and no serving path mutates it).
    """
    base = base_graph(graph)
    return {
        "format_version": _WAL_VERSION,
        "tenant": tenant,
        "epoch": epoch,
        "fingerprint": fingerprint,
        "graph": {
            "name": base.name,
            "vertices": list(base.vertex_names()),
            "labels": list(base.labels.names()),
            "edges": [list(edge) for edge in base.edges()],
        },
    }


def graph_from_snapshot(document: dict) -> KnowledgeGraph:
    """Rebuild the snapshot's graph with identical vertex/label ids."""
    try:
        info = document["graph"]
        graph = KnowledgeGraph(name=info["name"])
        for name in info["vertices"]:
            graph.add_vertex(name)
        for label in info["labels"]:
            graph.labels.intern(label)
        for s_id, label_id, t_id in info["edges"]:
            graph.add_edge_ids(s_id, label_id, t_id)
    except (KeyError, TypeError, ValueError, IndexError) as error:
        raise WalCorruptionError(
            f"malformed WAL snapshot document: {error}"
        ) from error
    return graph


class TenantWal:
    """One tenant's write-ahead log directory (segments + snapshot).

    Safe for one writer (the leader service, which already serialises
    appends under its update lock) plus any number of concurrent readers
    (followers, recovery of a second process) — readers never write, and
    every writer mutation is either an O_APPEND write of one line or an
    atomic rename.
    """

    def __init__(
        self,
        root: str | Path,
        tenant: str,
        *,
        compact_every: int = DEFAULT_COMPACT_EVERY,
        fsync: bool = True,
    ) -> None:
        if compact_every < 1:
            raise WalCorruptionError(
                f"compact_every must be >= 1, got {compact_every}"
            )
        self.tenant = tenant
        self.directory = Path(root) / tenant
        self.directory.mkdir(parents=True, exist_ok=True)
        self.compact_every = compact_every
        self.fsync = fsync
        #: Epoch → content fingerprint for every epoch this log has
        #: witnessed (snapshot + records).  The warm-cache ancestor check
        #: (:meth:`QueryService.load_snapshot`) verifies against this.
        self.fingerprints: dict[int, str] = {}
        #: Epochs present as *records* (snapshot excluded) — a follower
        #: uses this to tell "records still reach me" from "the leader
        #: compacted past me and only the snapshot covers that epoch".
        self.record_epochs: set[int] = set()
        self._handle = None
        self._repaired = False
        self._scan()

    # ------------------------------------------------------------------
    # directory state
    # ------------------------------------------------------------------

    def _segment_paths(self) -> list[Path]:
        return sorted(
            entry
            for entry in self.directory.iterdir()
            if entry.name.startswith(_SEGMENT_PREFIX)
            and entry.name.endswith(_SEGMENT_SUFFIX)
        )

    @property
    def snapshot_path(self) -> Path:
        return self.directory / _SNAPSHOT_NAME

    def _scan(self) -> None:
        """(Re)build the in-memory view from the directory contents."""
        self.fingerprints = {}
        self.record_epochs = set()
        self.snapshot_epoch: int | None = None
        self.snapshot_fingerprint: str | None = None
        #: Highest epoch witnessed (snapshot or record); 0 = empty log.
        self.last_epoch = 0
        self.truncated_tail = False
        self._records = 0
        self._next_seq = 1
        self._since_snapshot = 0
        document = self._read_snapshot_document(require=False)
        if document is not None:
            self.snapshot_epoch = document["epoch"]
            self.snapshot_fingerprint = document["fingerprint"]
            self.fingerprints[self.snapshot_epoch] = self.snapshot_fingerprint
            self.last_epoch = self.snapshot_epoch
        for record in self.read_records():
            self.fingerprints[record.epoch] = record.fingerprint
            self.record_epochs.add(record.epoch)
            self.last_epoch = max(self.last_epoch, record.epoch)
            self._records += 1
            self._next_seq = max(self._next_seq, record.seq + 1)
            if self.snapshot_epoch is None or record.epoch > self.snapshot_epoch:
                self._since_snapshot += 1

    def reload(self) -> None:
        """Re-scan the directory (follower polling a leader's log)."""
        self.close()
        self._scan()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def _read_snapshot_document(self, *, require: bool) -> dict | None:
        path = self.snapshot_path
        if not path.is_file():
            if require:
                raise WalCorruptionError(f"no WAL snapshot at {path}")
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            if document.get("format_version") != _WAL_VERSION:
                raise WalCorruptionError(
                    f"unsupported WAL snapshot version "
                    f"{document.get('format_version')!r} in {path}"
                )
            document["epoch"] = int(document["epoch"])
            document["fingerprint"] = str(document["fingerprint"])
        except (OSError, json.JSONDecodeError, KeyError, ValueError) as error:
            raise WalCorruptionError(
                f"cannot read WAL snapshot {path}: {error}"
            ) from error
        return document

    def load_snapshot(self) -> tuple[KnowledgeGraph, int, str] | None:
        """The newest compaction snapshot as ``(graph, epoch, fingerprint)``.

        ``None`` when the log has never compacted (replay then starts
        from the deployment's base graph at epoch 0).
        """
        document = self._read_snapshot_document(require=False)
        if document is None:
            return None
        graph = graph_from_snapshot(document)
        return graph, document["epoch"], document["fingerprint"]

    def read_records(self):
        """Yield every decodable :class:`WalRecord` in epoch order.

        A partial *final* line of the *final* segment is tolerated (the
        shape of a crash mid-append) and flips :attr:`truncated_tail`;
        any other undecodable line raises
        :class:`~repro.exceptions.WalCorruptionError`.
        """
        self.truncated_tail = False
        segments = self._segment_paths()
        for segment_index, segment in enumerate(segments):
            last_segment = segment_index == len(segments) - 1
            try:
                raw = segment.read_bytes()
            except OSError as error:
                raise WalCorruptionError(
                    f"cannot read WAL segment {segment}: {error}"
                ) from error
            lines = raw.split(b"\n")
            # A well-formed segment ends with a newline, so the final
            # split piece is empty; anything else is a torn tail.
            body, tail = lines[:-1], lines[-1]
            for line_index, line in enumerate(body):
                if not line.strip():
                    continue
                try:
                    document = json.loads(line)
                    record = WalRecord(
                        seq=int(document["seq"]),
                        epoch=int(document["epoch"]),
                        fingerprint=str(document["fingerprint"]),
                        ts=float(document["ts"]),
                        edges=tuple(
                            (str(s), str(label), str(t), str(op))
                            for s, label, t, op in document["edges"]
                        ),
                    )
                except (
                    json.JSONDecodeError, KeyError, TypeError, ValueError,
                ) as error:
                    raise WalCorruptionError(
                        f"malformed record at {segment}:{line_index + 1}: "
                        f"{error}"
                    ) from error
                yield record
            if tail.strip():
                if not last_segment:
                    raise WalCorruptionError(
                        f"segment {segment} has a torn line but is not the "
                        "newest segment"
                    )
                self.truncated_tail = True

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def _repair_tail(self) -> None:
        """Truncate a torn final line before the first append.

        Without this a new record would be concatenated onto the torn
        bytes, corrupting *both* records instead of losing the already
        lost one.
        """
        segments = self._segment_paths()
        if not segments:
            return
        newest = segments[-1]
        raw = newest.read_bytes()
        if not raw or raw.endswith(b"\n"):
            return
        keep = raw.rfind(b"\n") + 1  # 0 when no newline at all
        with open(newest, "r+b") as handle:
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())

    def append(
        self,
        edges,
        *,
        epoch: int,
        fingerprint: str,
        graph: KnowledgeGraph,
    ) -> WalRecord:
        """Durably append one acknowledged batch; maybe compact.

        Called by :meth:`QueryService.apply_updates` under its update
        lock, after the new epoch is published.  ``graph`` is the
        post-batch graph — the compaction snapshot source if this append
        crosses the ``compact_every`` threshold.
        """
        if not self._repaired:
            self._repair_tail()
            self._repaired = True
        record = WalRecord(
            seq=self._next_seq,
            epoch=epoch,
            fingerprint=fingerprint,
            ts=time.time(),
            edges=tuple(tuple(edge) for edge in edges),
        )
        line = json.dumps(
            {
                "seq": record.seq,
                "epoch": record.epoch,
                "fingerprint": record.fingerprint,
                "ts": record.ts,
                "edges": [list(edge) for edge in record.edges],
            },
            separators=(",", ":"),
        )
        if self._handle is None:
            path = self.directory / (
                f"{_SEGMENT_PREFIX}{epoch:012d}{_SEGMENT_SUFFIX}"
            )
            fresh = not path.exists()
            self._handle = open(path, "ab")
            if fresh:
                fsync_directory(self.directory)
        self._handle.write(line.encode("utf-8") + b"\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._next_seq += 1
        self._records += 1
        self._since_snapshot += 1
        self.fingerprints[epoch] = fingerprint
        self.record_epochs.add(epoch)
        self.last_epoch = max(self.last_epoch, epoch)
        if self._since_snapshot >= self.compact_every:
            self.compact(graph, epoch=epoch, fingerprint=fingerprint)
        return record

    def compact(
        self, graph: KnowledgeGraph, *, epoch: int, fingerprint: str
    ) -> None:
        """Snapshot the graph at ``epoch``, then drop covered segments.

        Crash-safe by ordering: the snapshot lands atomically first, so
        a kill between the two steps leaves extra segments whose records
        replay skips (their epochs are ≤ the snapshot's).  Re-running
        compaction later converges to the clean state.
        """
        self._write_snapshot(graph, epoch=epoch, fingerprint=fingerprint)
        self._drop_obsolete_segments(epoch)

    def _write_snapshot(
        self, graph: KnowledgeGraph, *, epoch: int, fingerprint: str
    ) -> None:
        atomic_write_json(
            snapshot_document(
                graph, tenant=self.tenant, epoch=epoch, fingerprint=fingerprint
            ),
            self.snapshot_path,
        )
        self.snapshot_epoch = epoch
        self.snapshot_fingerprint = fingerprint
        self.fingerprints[epoch] = fingerprint
        self._since_snapshot = 0

    def _drop_obsolete_segments(self, snapshot_epoch: int) -> None:
        """Delete every segment fully covered by the epoch snapshot.

        A segment is covered when its newest intact record's epoch is ≤
        ``snapshot_epoch``.  The active handle is closed first; the next
        append opens a fresh segment named by its epoch.
        """
        self.close()
        dropped = False
        for segment in self._segment_paths():
            newest = 0
            for line in segment.read_bytes().split(b"\n"):
                if not line.strip():
                    continue
                try:
                    newest = max(newest, int(json.loads(line)["epoch"]))
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    continue  # torn tail — doesn't extend the segment
            if newest <= snapshot_epoch:
                segment.unlink()
                dropped = True
        if dropped:
            fsync_directory(self.directory)

    # ------------------------------------------------------------------
    # replay + observability
    # ------------------------------------------------------------------

    def replay_into(self, service) -> dict:
        """Re-apply every record beyond the service's current epoch.

        The service must already hold the log's base state — the
        compaction snapshot's graph renumbered via
        :meth:`QueryService.reset_epoch`, or the deployment's base graph
        at epoch 0 (see :func:`repro.wal.recover_service`).  Records at
        or below the current epoch are skipped (the crash-mid-compaction
        leftovers); a gap raises
        :class:`~repro.exceptions.WalReplayError`, as does any post-apply
        epoch or fingerprint mismatch.  Attach the log *after* this
        (:meth:`QueryService.attach_wal`) so replay never re-appends.
        """
        applied = 0
        skipped = 0
        for record in self.read_records():
            current = service.epoch.epoch_id
            if record.epoch <= current:
                skipped += 1
                continue
            if record.epoch != current + 1:
                raise WalReplayError(
                    f"epoch gap in WAL replay: at epoch {current}, next "
                    f"record is epoch {record.epoch} (seq {record.seq})"
                )
            summary = service.apply_updates(record.edges)
            if summary["epoch"] != record.epoch:
                raise WalReplayError(
                    f"record seq {record.seq} expected to produce epoch "
                    f"{record.epoch}, produced {summary['epoch']} — the "
                    "base graph does not match the log"
                )
            if service.epoch.fingerprint != record.fingerprint:
                raise WalReplayError(
                    f"fingerprint mismatch after replaying epoch "
                    f"{record.epoch}: rebuilt {service.epoch.fingerprint}, "
                    f"logged {record.fingerprint} — the base graph does "
                    "not match the log"
                )
            applied += 1
        return {
            "applied": applied,
            "skipped": skipped,
            "epoch": service.epoch.epoch_id,
            "truncated_tail": self.truncated_tail,
        }

    def describe(self) -> dict:
        """JSON-ready state for ``/healthz``, ``/stats`` and metrics."""
        return {
            "directory": str(self.directory),
            "records": self._records,
            "segments": len(self._segment_paths()),
            "epoch": self.last_epoch,
            "snapshot_epoch": self.snapshot_epoch,
            "compact_every": self.compact_every,
        }


class UpdateWal:
    """The WAL root: one :class:`TenantWal` per tenant directory."""

    def __init__(
        self,
        root: str | Path,
        *,
        compact_every: int = DEFAULT_COMPACT_EVERY,
        fsync: bool = True,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.compact_every = compact_every
        self.fsync = fsync
        self._tenants: dict[str, TenantWal] = {}

    def tenant(self, name: str) -> TenantWal:
        """The (cached) per-tenant log for ``name``."""
        wal = self._tenants.get(name)
        if wal is None:
            wal = self._tenants[name] = TenantWal(
                self.root,
                name,
                compact_every=self.compact_every,
                fsync=self.fsync,
            )
        return wal

    def close(self) -> None:
        for wal in self._tenants.values():
            wal.close()
