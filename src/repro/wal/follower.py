"""Read replication: a follower tails a leader's WAL directory.

The log doubles as the replication carrier: every record already names
the epoch it produced and the content fingerprint that proves it, so a
follower that re-applies records in order republishes *the same epochs*
— same ids, same fingerprints — and serves them through the unchanged
tenant routes.  No second protocol, no leader-side awareness: the
follower is just another reader of the directory (shared disk, NFS, or
a file-sync channel), and the fingerprint check turns any divergence
into a hard error instead of silently stale answers.

:class:`WalFollower` wraps one read-only service and one
:class:`~repro.wal.log.TenantWal` view of the leader's directory.
``poll_once`` re-scans the directory, resyncs from the compaction
snapshot when the leader compacted past the records this replica still
needed (:meth:`QueryService.replace_graph`), then replays the remaining
records exactly like crash recovery does.  ``start`` runs that on a
daemon thread at a fixed interval; ``describe`` exposes the cached lag —
epochs behind the log tip, and seconds since the oldest unapplied
record was written — which :meth:`QueryService.health` folds into
``/healthz`` and the Prometheus renderer into
``repro_follower_lag_epochs`` / ``repro_follower_lag_seconds``.

Writes are refused upstream: the CLI sets ``service.read_only = True``
so ``POST /edges`` answers a structured 403
(:class:`~repro.exceptions.ReadOnlyServiceError`) while this tailer —
which calls :meth:`apply_updates` directly, below the HTTP gate — keeps
republishing.
"""

from __future__ import annotations

import logging
import threading
import time

from repro.exceptions import WalError
from repro.wal.log import TenantWal

_LOG = logging.getLogger("repro.wal.follower")

__all__ = ["DEFAULT_POLL_INTERVAL", "WalFollower"]

#: Seconds between directory polls; sub-second by default so follower
#: lag stays bounded by I/O, not by the timer.
DEFAULT_POLL_INTERVAL = 0.5


class WalFollower:
    """Tail one tenant's WAL into one read-only service."""

    def __init__(
        self,
        service,
        wal: TenantWal,
        *,
        interval: float = DEFAULT_POLL_INTERVAL,
    ) -> None:
        self.service = service
        self.wal = wal
        self.interval = interval
        self.records_applied = 0
        self.last_poll_at: float | None = None
        self.last_error: str | None = None
        #: Set when :meth:`stop` could not join the polling thread — the
        #: poll is wedged in I/O (dead NFS mount, hung snapshot read).
        #: Surfaced in :meth:`describe` and the ``repro_follower_stuck``
        #: gauge so operators see the zombie instead of a silent leak.
        self.stuck = False
        self._lag_epochs = 0
        self._lag_seconds = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------

    def poll_once(self) -> dict:
        """One tailing step: rescan, maybe resync, replay, measure lag.

        Deterministic and synchronous — the tests drive it directly; the
        background thread just calls it on a timer.  Raises
        :class:`~repro.exceptions.WalError` subclasses on divergence or
        corruption (the thread records those in :attr:`last_error`
        instead of dying silently).
        """
        self.wal.reload()
        service = self.service
        resynced = False
        snapshot_epoch = self.wal.snapshot_epoch
        if (
            snapshot_epoch is not None
            and snapshot_epoch > service.epoch.epoch_id
            and not self._records_reach(service.epoch.epoch_id + 1)
        ):
            # The leader compacted past what we still needed: the only
            # way forward is to adopt the snapshot wholesale.
            loaded = self.wal.load_snapshot()
            assert loaded is not None  # snapshot_epoch came from it
            graph, epoch, fingerprint = loaded
            service.replace_graph(
                graph, epoch, expected_fingerprint=fingerprint
            )
            resynced = True
        replayed = self.wal.replay_into(service)
        self.records_applied += replayed["applied"]
        self._lag_epochs = max(0, self.wal.last_epoch - service.epoch.epoch_id)
        self._lag_seconds = self._pending_age() if self._lag_epochs else 0.0
        self.last_poll_at = time.time()
        self.last_error = None
        return {
            "applied": replayed["applied"],
            "skipped": replayed["skipped"],
            "resynced": resynced,
            "epoch": service.epoch.epoch_id,
            "lag_epochs": self._lag_epochs,
        }

    def _records_reach(self, epoch: int) -> bool:
        """Whether the on-disk *records* include ``epoch``.

        Deliberately not :attr:`TenantWal.fingerprints` — that map also
        holds the snapshot's epoch, which would make a freshly compacted
        log (snapshot at exactly ``epoch``, segments dropped) look
        replayable when the only way forward is adopting the snapshot.
        """
        return epoch in self.wal.record_epochs

    def _pending_age(self) -> float:
        """Age of the oldest record this replica has not applied yet."""
        current = self.service.epoch.epoch_id
        oldest: float | None = None
        for record in self.wal.read_records():
            if record.epoch > current:
                oldest = record.ts
                break
        if oldest is None:
            return 0.0
        return max(0.0, time.time() - oldest)

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the polling thread (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="wal-follower", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> bool:
        """Stop the polling thread (idempotent); True when it exited.

        A poll wedged in I/O cannot be interrupted from Python, so a
        join past ``timeout`` abandons the (daemon) thread rather than
        hanging shutdown forever — but loudly: :attr:`stuck` flips,
        :attr:`last_error` names the condition, and a warning is logged.
        The old code returned silently here, leaking the thread with no
        trace anywhere.
        """
        self._stop.set()
        thread = self._thread
        if thread is None:
            return True
        thread.join(timeout=timeout)
        if thread.is_alive():
            self.stuck = True
            self.last_error = (
                f"follower thread failed to stop within {timeout:.1f}s; "
                f"a poll is wedged (stale filesystem?) and the daemon "
                f"thread was abandoned"
            )
            _LOG.warning(
                "wal follower for %s stuck: poll did not finish within "
                "%.1fs of stop(); abandoning daemon thread",
                self.wal.directory,
                timeout,
            )
            return False
        self._thread = None
        return True

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.poll_once()
            except WalError as error:
                # Keep serving (reads are still consistent at the last
                # applied epoch) but surface the stall through /healthz.
                self.last_error = str(error)
                self.last_poll_at = time.time()
            self._stop.wait(self.interval)

    # ------------------------------------------------------------------

    def describe(self) -> dict:
        """JSON-ready replication status (cached from the last poll)."""
        document = {
            "role": "follower",
            "epoch": self.service.epoch.epoch_id,
            "wal_epoch": self.wal.last_epoch,
            "lag_epochs": self._lag_epochs,
            "lag_seconds": self._lag_seconds,
            "records_applied": self.records_applied,
            "interval_seconds": self.interval,
            "last_poll_at": self.last_poll_at,
            "directory": str(self.wal.directory),
            "stuck": self.stuck,
        }
        if self.last_error is not None:
            document["error"] = self.last_error
        return document
