"""The package version, importable without the package.

Lives in its own leaf module so layers deep inside the service stack
(``/healthz``, the ``repro_build_info`` metric) can stamp the version
without importing :mod:`repro` itself — whose ``__init__`` imports the
service stack, which would be a cycle.
"""

__version__ = "1.1.0"
