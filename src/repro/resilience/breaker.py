"""Per-worker circuit breakers (closed / open / half-open).

A breaker guards one shard worker.  **Closed** admits every call and
counts outcomes; it opens on either trigger:

* ``failure_threshold`` consecutive failures, or
* a rolling error rate over the last ``window`` calls at or above
  ``error_rate`` (only once ``min_calls`` outcomes are in the window,
  so a single early failure cannot open a cold breaker).

**Open** rejects calls without attempting them (the coordinator turns
the rejection into a degraded answer or a structured 503) until
``reset_timeout`` has passed, then moves to **half-open** and admits
exactly one probe at a time: a probe success closes the breaker and
clears the window, a probe failure re-opens it with a fresh rest timer.

The clock is injectable so tests drive state transitions without real
sleeps.  All methods are thread-safe; ``allow()`` + ``record_*()`` are
deliberately separate calls because the guarded call itself must run
outside the lock.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Numeric encoding for the Prometheus gauge (alert on value >= 1).
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Failure-rate-triggered call gate for one worker."""

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        window: int = 20,
        error_rate: float = 0.5,
        min_calls: int = 10,
        reset_timeout: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1: {failure_threshold}")
        if not 0.0 < error_rate <= 1.0:
            raise ValueError(f"error_rate must be in (0, 1]: {error_rate}")
        self.failure_threshold = failure_threshold
        self.error_rate = error_rate
        self.min_calls = max(1, min_calls)
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._window: deque[bool] = deque(maxlen=max(window, self.min_calls))
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probing = False
        # Monotone counters for /stats and the Prometheus renderer.
        self._opens = 0
        self._rejected = 0
        self._failures = 0
        self._successes = 0

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """Whether a call may be attempted right now.

        Open → reject (counted).  Half-open → admit a single probe at a
        time; concurrent callers are rejected until the probe reports.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            self._rejected += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._successes += 1
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                # Probe came back healthy: full reset.
                self._state = CLOSED
                self._probing = False
                self._opened_at = None
                self._window.clear()
            elif self._state == CLOSED:
                self._window.append(True)

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                # Probe failed: rest the worker for another full timeout.
                self._trip()
                return
            if self._state != CLOSED:
                return
            self._window.append(False)
            if self._consecutive_failures >= self.failure_threshold:
                self._trip()
                return
            if len(self._window) >= self.min_calls:
                errors = sum(1 for ok in self._window if not ok)
                if errors / len(self._window) >= self.error_rate:
                    self._trip()

    # ------------------------------------------------------------------

    def _trip(self) -> None:
        """Transition to OPEN (caller holds the lock)."""
        self._state = OPEN
        self._probing = False
        self._opened_at = self._clock()
        self._opens += 1

    def _maybe_half_open(self) -> None:
        """Open → half-open once the rest period has elapsed (lock held)."""
        if (
            self._state == OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = HALF_OPEN
            self._probing = False

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """JSON-ready counters and current state."""
        with self._lock:
            self._maybe_half_open()
            window = len(self._window)
            errors = sum(1 for ok in self._window if not ok)
            return {
                "state": self._state,
                "state_code": STATE_CODES[self._state],
                "consecutive_failures": self._consecutive_failures,
                "window_calls": window,
                "window_error_rate": (errors / window) if window else 0.0,
                "opens": self._opens,
                "rejected": self._rejected,
                "failures": self._failures,
                "successes": self._successes,
            }
