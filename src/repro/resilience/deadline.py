"""End-to-end request deadlines on a ContextVar.

A :class:`Deadline` is an absolute expiry on the monotonic clock,
created once per request (``?deadline_ms=`` or ``--default-deadline-ms``)
and carried on a ContextVar exactly like the PR 6 trace — the ROADMAP's
"wire deadlines to span clocks rather than inventing a second timing
layer" item: both ride :func:`time.perf_counter` and the same
request-scoped propagation discipline.

Checkpoints pull the active deadline **once** with
:func:`current_deadline` and then test ``deadline.expired()`` inside
their loops; when no deadline is set the per-iteration cost is a single
``is not None`` test, which keeps the disabled-resilience overhead on
``bench_hotpath`` in the noise.  Thread pools do *not* inherit
ContextVars, so fan-out sites (the batch executor, the scatter pool)
re-activate the deadline explicitly with :class:`use_deadline`, the same
pattern :class:`repro.obs.trace.use_trace` uses for spans.
"""

from __future__ import annotations

from contextvars import ContextVar
from time import perf_counter

from repro.exceptions import DeadlineExceededError

__all__ = [
    "Deadline",
    "check_deadline",
    "current_deadline",
    "use_deadline",
]

_ACTIVE_DEADLINE: ContextVar[Deadline | None] = ContextVar(
    "repro_active_deadline", default=None
)


class Deadline:
    """An absolute expiry on the monotonic clock.

    Immutable after construction; safe to share across the threads a
    single request fans out to (reads only).
    """

    __slots__ = ("budget_ms", "started", "expires_at")

    def __init__(self, budget_ms: float, *, started: float | None = None):
        if budget_ms <= 0:
            raise ValueError(f"deadline budget must be positive: {budget_ms}")
        self.budget_ms = float(budget_ms)
        self.started = perf_counter() if started is None else started
        self.expires_at = self.started + self.budget_ms / 1000.0

    @classmethod
    def after_ms(cls, budget_ms: float) -> "Deadline":
        """A deadline ``budget_ms`` milliseconds from now."""
        return cls(budget_ms)

    # ------------------------------------------------------------------

    def elapsed_ms(self) -> float:
        return (perf_counter() - self.started) * 1000.0

    def remaining_seconds(self) -> float:
        """Seconds until expiry; zero or negative once expired."""
        return self.expires_at - perf_counter()

    def remaining_ms(self) -> float:
        return self.remaining_seconds() * 1000.0

    def expired(self) -> bool:
        return perf_counter() >= self.expires_at

    def check(self, where: str, **partial) -> None:
        """Raise a structured 504 if this deadline has expired.

        ``partial`` becomes the error's partial-progress accounting
        (rounds completed, vertices passed, ...).
        """
        if perf_counter() >= self.expires_at:
            raise DeadlineExceededError(
                where,
                elapsed_ms=self.elapsed_ms(),
                budget_ms=self.budget_ms,
                partial=partial or None,
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Deadline(budget_ms={self.budget_ms:.1f}, "
            f"remaining_ms={self.remaining_ms():.1f})"
        )


def current_deadline() -> Deadline | None:
    """The deadline of the current request, or ``None``.

    One ContextVar read; callers capture the result once and test
    ``is not None`` in their loops.
    """
    return _ACTIVE_DEADLINE.get()


def check_deadline(where: str, **partial) -> None:
    """Check the *ambient* deadline; no-op when none is active.

    Convenience for one-shot checkpoints (the service execute seam);
    loops should capture :func:`current_deadline` once instead.
    """
    deadline = _ACTIVE_DEADLINE.get()
    if deadline is not None:
        deadline.check(where, **partial)


class use_deadline:
    """Context manager that (de)activates a deadline for a block.

    ``use_deadline(None)`` deactivates — used by pool workers to scope
    the parent request's deadline (or lack of one) onto their thread,
    mirroring :class:`repro.obs.trace.use_trace`.
    """

    __slots__ = ("deadline", "_token")

    def __init__(self, deadline: Deadline | None):
        self.deadline = deadline
        self._token = None

    def __enter__(self) -> Deadline | None:
        self._token = _ACTIVE_DEADLINE.set(self.deadline)
        return self.deadline

    def __exit__(self, exc_type, exc, tb) -> None:
        _ACTIVE_DEADLINE.reset(self._token)
        self._token = None
