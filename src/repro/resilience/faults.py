"""Fault injection for chaos tests and the CI ``chaos`` job.

A :class:`FaultRule` describes one misbehaviour — *hang*, *slow*,
*drop*, *error*, or *flap* — matched against a per-target, per-operation
call counter.  A :class:`FaultPlan` groups rules by target.
:class:`FaultyWorker` wraps a shard worker (in-process or HTTP) and runs
the matching rules before delegating, so the coordinator under test sees
real timeouts, real connection failures, and real slow responses without
any cooperation from the worker.  :class:`FaultyWal` does the same for a
follower's WAL view (a tailer stuck in I/O).

The injected failure types map onto what the resilience layer must
absorb:

========  =====================================================
kind      behaviour on a matching call
========  =====================================================
hang      sleep ``duration`` seconds (default 10), then proceed
slow      sleep ``duration`` seconds (default 0.05), then proceed
drop      raise :class:`ConnectionError` (connection lost)
error     raise :class:`RuntimeError` (worker-side crash)
flap      raise :class:`ConnectionError`; pairs with ``every=2``
          so the worker alternates failing and working
========  =====================================================

Rules are deterministic (pure counter arithmetic), so a chaos seed fully
determines the failure schedule.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["FaultPlan", "FaultRule", "FaultyWal", "FaultyWorker"]


@dataclass
class FaultRule:
    """One injectable misbehaviour, matched by call number.

    Matches the ``n``-th call (1-based, counted per target and
    operation) when ``n >= start``, ``(n - start) % every == 0``, and
    fewer than ``count`` matches have fired (``count=None`` = forever).
    ``operation`` is the method name to intercept, or ``"*"`` for all
    intercepted methods.
    """

    kind: str
    operation: str = "expand"
    start: int = 1
    every: int = 1
    count: int | None = None
    duration: float | None = None
    _fired: int = field(default=0, repr=False, compare=False)

    KINDS = ("hang", "slow", "drop", "error", "flap")
    _DEFAULT_DURATIONS = {"hang": 10.0, "slow": 0.05}

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if self.start < 1 or self.every < 1:
            raise ValueError("start and every must be >= 1")
        if self.duration is None:
            self.duration = self._DEFAULT_DURATIONS.get(self.kind, 0.0)

    def matches(self, operation: str, call_number: int) -> bool:
        if self.operation not in ("*", operation):
            return False
        if call_number < self.start:
            return False
        if (call_number - self.start) % self.every != 0:
            return False
        return self.count is None or self._fired < self.count

    def fire(self, target: object, operation: str) -> None:
        """Apply the side effect (sleep and/or raise).

        The match is claimed (``_fired`` incremented) by the injector
        under its lock *before* this runs, so hangs do not serialize
        other calls.
        """
        if self.kind in ("hang", "slow"):
            time.sleep(self.duration)
            return
        message = (
            f"injected {self.kind} on {target}.{operation} "
            f"(match #{self._fired})"
        )
        if self.kind == "error":
            raise RuntimeError(message)
        raise ConnectionError(message)  # drop, flap


class FaultPlan:
    """Rules grouped by target key (shard id, ``"wal"``, ...)."""

    def __init__(self, rules: dict[object, list[FaultRule]] | None = None):
        self._rules: dict[object, list[FaultRule]] = {
            key: list(value) for key, value in (rules or {}).items()
        }

    def add(self, target: object, rule: FaultRule) -> "FaultPlan":
        self._rules.setdefault(target, []).append(rule)
        return self

    def rules_for(self, target: object) -> list[FaultRule]:
        return self._rules.get(target, [])

    def describe(self) -> dict:
        """JSON-ready summary (the CI job logs the active plan)."""
        return {
            str(target): [
                {
                    "kind": rule.kind,
                    "operation": rule.operation,
                    "start": rule.start,
                    "every": rule.every,
                    "count": rule.count,
                    "duration": rule.duration,
                }
                for rule in rules
            ]
            for target, rules in self._rules.items()
        }


class _FaultInjector:
    """Shared call-counting + rule dispatch for the wrappers."""

    def __init__(self, inner, rules: list[FaultRule], name: str):
        self._inner = inner
        self._faults = list(rules)
        self._name = name
        self._calls: dict[str, int] = {}
        self._fault_lock = threading.Lock()

    def _inject(self, operation: str) -> None:
        with self._fault_lock:
            number = self._calls.get(operation, 0) + 1
            self._calls[operation] = number
            matched = [
                rule for rule in self._faults
                if rule.matches(operation, number)
            ]
            for rule in matched:
                rule._fired += 1
        # Fire outside the lock: hangs must not serialize other calls.
        for rule in matched:
            rule.fire(self._name, operation)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


class FaultyWorker(_FaultInjector):
    """A shard worker that misbehaves on schedule.

    Wraps any object with the worker call surface (``expand``,
    ``local_query``, ``describe``); drop it into
    ``coordinator.workers[i]`` to put rule-driven faults on the query
    path.  Unintercepted attributes delegate to the wrapped worker.
    """

    def __init__(self, worker, rules: list[FaultRule], *, name: str = "worker"):
        super().__init__(worker, rules, name)

    def expand(self, seeds, mask, exclude=(), trace=None, deadline_ms=None):
        self._inject("expand")
        return self._inner.expand(
            seeds, mask, exclude, trace, deadline_ms=deadline_ms
        )

    def local_query(self, query):
        self._inject("local_query")
        return self._inner.local_query(query)

    def describe(self) -> dict:
        document = dict(self._inner.describe())
        document["faults"] = {
            "calls": dict(self._calls),
            "rules": len(self._faults),
        }
        return document


class FaultyWal(_FaultInjector):
    """A WAL view whose polling operations misbehave on schedule.

    Wraps a :class:`~repro.wal.log.TenantWal`; intercepts ``reload`` and
    ``replay_into`` (the two calls a follower's tailer thread spends its
    life in) so tests can simulate a tailer stuck in directory I/O.
    """

    def __init__(self, wal, rules: list[FaultRule], *, name: str = "wal"):
        super().__init__(wal, rules, name)

    def reload(self):
        self._inject("reload")
        return self._inner.reload()

    def replay_into(self, service):
        self._inject("replay_into")
        return self._inner.replay_into(service)
