"""Budget-aware retries with capped exponential backoff.

:class:`RetryPolicy` retries **idempotent** calls only — shard
``expand`` is a pure function of ``(seeds, mask, exclude)`` over an
immutable slice, so replaying it is always safe.  Backoff delays use
*decorrelated jitter*: each delay is drawn uniformly from
``[base, previous * 3]`` and capped, which spreads retry storms from
many coordinators without the synchronized waves plain exponential
backoff produces.

The policy is deadline-aware: before sleeping it checks the remaining
request budget and gives up early when the backoff would outlive the
deadline — a retry that cannot finish in time is load on a struggling
worker for nothing.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable

from repro.exceptions import CircuitOpenError, DeadlineExceededError

__all__ = ["RetryPolicy"]

#: Exceptions that must never be retried: an expired budget means the
#: answer is late no matter what, and an open breaker means the worker
#: is being deliberately rested.
NON_RETRYABLE = (DeadlineExceededError, CircuitOpenError)


class RetryPolicy:
    """Capped exponential backoff with decorrelated jitter.

    Thread-safe: the jitter RNG is guarded so concurrent scatter rounds
    draw independent delays.  ``sleep`` and the RNG seed are injectable
    for deterministic tests.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        *,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        seed: int | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {max_attempts}")
        if base_delay <= 0 or max_delay < base_delay:
            raise ValueError(
                f"need 0 < base_delay <= max_delay: {base_delay}, {max_delay}"
            )
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def next_delay(self, previous: float | None) -> float:
        """Draw the next backoff delay (decorrelated jitter)."""
        upper = self.base_delay * 3 if previous is None else previous * 3
        with self._lock:
            delay = self._rng.uniform(self.base_delay, max(self.base_delay, upper))
        return min(self.max_delay, delay)

    def call(
        self,
        fn: Callable[[], object],
        *,
        deadline=None,
        on_retry: Callable[[int, BaseException], None] | None = None,
        on_failure: Callable[[BaseException], None] | None = None,
    ):
        """Run ``fn`` with retries; return its result or raise the last error.

        ``deadline`` (a :class:`~repro.resilience.deadline.Deadline`,
        passed explicitly because pool threads do not inherit the
        ContextVar) bounds the backoff: when the drawn delay would not
        fit in the remaining budget the last failure is re-raised
        immediately.  ``on_retry(attempt, error)`` fires before each
        backoff sleep; ``on_failure(error)`` fires for every failed
        attempt (the circuit breaker's per-attempt accounting hook).
        """
        previous: float | None = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except NON_RETRYABLE:
                raise
            except Exception as error:
                if on_failure is not None:
                    on_failure(error)
                if attempt >= self.max_attempts:
                    raise
                delay = self.next_delay(previous)
                if deadline is not None:
                    remaining = deadline.remaining_seconds()
                    if remaining <= delay:
                        # The backoff would outlive the budget; stop
                        # hammering the worker and surface the failure.
                        raise
                if on_retry is not None:
                    on_retry(attempt, error)
                self._sleep(delay)
                previous = delay
        raise AssertionError("unreachable")  # pragma: no cover
