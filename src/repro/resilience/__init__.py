"""Fault tolerance for the serving stack (:mod:`repro.resilience`).

Five cooperating pieces, each usable on its own:

* :mod:`~repro.resilience.deadline` — an end-to-end per-request time
  budget carried on a ContextVar alongside the request trace, checked in
  the service execute seam, the evaluator hot loops, each scatter-gather
  round, and remote shard workers (the remaining budget rides the
  ``/shard/<id>/expand`` wire).
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy`, capped
  exponential backoff with decorrelated jitter for idempotent shard
  calls, budget-aware so retries never outlive the request deadline.
* :mod:`~repro.resilience.breaker` — :class:`CircuitBreaker`, a
  per-worker closed/open/half-open state machine on consecutive-failure
  and rolling-error-rate thresholds.
* :mod:`~repro.resilience.admission` — :class:`AdmissionController`,
  per-tenant concurrent-request and queue-depth caps that shed overload
  as structured 429s instead of piling onto server threads.
* :mod:`~repro.resilience.faults` — the fault-injection harness
  (:class:`FaultPlan`, :class:`FaultyWorker`, :class:`FaultyWal`) used
  by the chaos suite and the CI ``chaos`` job.

The soundness contract for degraded answers comes from edge-subset
monotonicity of the two-phase LSCR evaluation: evaluating over a subset
of the edges (the surviving shards) can prove *reachable* but never
*unreachable*, so a degraded answer is ``reachable`` or ``unknown`` —
never wrong.
"""

from repro.resilience.admission import AdmissionController
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import (
    Deadline,
    check_deadline,
    current_deadline,
    use_deadline,
)
from repro.resilience.faults import (
    FaultPlan,
    FaultRule,
    FaultyWal,
    FaultyWorker,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "Deadline",
    "FaultPlan",
    "FaultRule",
    "FaultyWal",
    "FaultyWorker",
    "RetryPolicy",
    "check_deadline",
    "current_deadline",
    "use_deadline",
]
