"""Admission control: bounded concurrency with a bounded wait queue.

One :class:`AdmissionController` guards one tenant's query endpoints.
At most ``max_concurrent`` requests execute at once; up to ``max_queue``
more may wait (bounded by the request deadline when one is set, else by
``max_wait``); everything beyond that is shed *immediately* with a
structured 429 carrying ``Retry-After`` — overload degrades into fast,
predictable rejections instead of piling onto ThreadingHTTPServer
threads until every client times out.

Built on one ``Condition`` rather than a semaphore so queue depth is
observable and the queue cap is enforced atomically with the
concurrency cap.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.exceptions import DeadlineExceededError, OverloadedError

__all__ = ["AdmissionController"]


class _Admission:
    """Context manager releasing one admitted slot."""

    __slots__ = ("_controller",)

    def __init__(self, controller: "AdmissionController"):
        self._controller = controller

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._controller._release()


class AdmissionController:
    """Concurrency + queue-depth caps for one tenant."""

    def __init__(
        self,
        max_concurrent: int,
        *,
        max_queue: int = 0,
        max_wait: float = 5.0,
        retry_after: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1: {max_concurrent}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0: {max_queue}")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.max_wait = max_wait
        self.retry_after = retry_after
        self._clock = clock
        self._condition = threading.Condition()
        self._active = 0
        self._queued = 0
        # Monotone counters for /stats and the Prometheus renderer.
        self._admitted = 0
        self._shed = 0
        self._timeouts = 0

    # ------------------------------------------------------------------

    def admit(self, deadline=None) -> _Admission:
        """Acquire a slot or raise; use as ``with controller.admit():``.

        Raises :class:`~repro.exceptions.OverloadedError` (429) when the
        queue is full or the bounded wait elapses, and
        :class:`~repro.exceptions.DeadlineExceededError` (504) when the
        request's own budget expires while queued.
        """
        with self._condition:
            if self._active < self.max_concurrent:
                self._active += 1
                self._admitted += 1
                return _Admission(self)
            if self._queued >= self.max_queue:
                self._shed += 1
                raise OverloadedError(
                    f"server at capacity: {self._active} in flight, "
                    f"queue of {self.max_queue} full",
                    retry_after=self.retry_after,
                    detail={
                        "max_concurrent": self.max_concurrent,
                        "max_queue": self.max_queue,
                    },
                )
            self._queued += 1
            try:
                started = self._clock()
                while self._active >= self.max_concurrent:
                    budget = self.max_wait - (self._clock() - started)
                    if deadline is not None:
                        budget = min(budget, deadline.remaining_seconds())
                    if budget <= 0:
                        if deadline is not None and deadline.expired():
                            raise DeadlineExceededError(
                                "admission-queue",
                                elapsed_ms=deadline.elapsed_ms(),
                                budget_ms=deadline.budget_ms,
                                partial={"queued": self._queued},
                            )
                        self._timeouts += 1
                        self._shed += 1
                        raise OverloadedError(
                            f"queued longer than {self.max_wait:g}s waiting "
                            f"for a slot",
                            retry_after=self.retry_after,
                            detail={
                                "max_concurrent": self.max_concurrent,
                                "max_queue": self.max_queue,
                                "waited_seconds": round(
                                    self._clock() - started, 3
                                ),
                            },
                        )
                    self._condition.wait(timeout=budget)
            finally:
                self._queued -= 1
            self._active += 1
            self._admitted += 1
            return _Admission(self)

    def _release(self) -> None:
        with self._condition:
            self._active -= 1
            self._condition.notify()

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """JSON-ready counters and live occupancy."""
        with self._condition:
            return {
                "max_concurrent": self.max_concurrent,
                "max_queue": self.max_queue,
                "active": self._active,
                "queued": self._queued,
                "admitted": self._admitted,
                "shed": self._shed,
                "queue_timeouts": self._timeouts,
            }
