"""Exception hierarchy for the LSCR reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Subsystems get
their own branch of the hierarchy:

* :class:`GraphError` — knowledge-graph construction and lookups;
* :class:`SparqlError` — the embedded SPARQL engine (syntax/evaluation);
* :class:`ConstraintError` — label / substructure constraint validation;
* :class:`IndexingError` — local-index and comparator index construction;
* :class:`WorkloadError` — evaluation-query generation (Section 6.1.1/6.2);
* :class:`BenchmarkError` — the table/figure benchmark harness;
* :class:`ServiceError` — the concurrent query service (:mod:`repro.service`);
* :class:`WalError` — the durable update log and replication (:mod:`repro.wal`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class GraphError(ReproError):
    """A knowledge-graph operation failed."""


class VertexNotFoundError(GraphError, KeyError):
    """A vertex name or id was not present in the graph."""

    def __init__(self, vertex: object):
        super().__init__(f"vertex not found: {vertex!r}")
        self.vertex = vertex


class LabelNotFoundError(GraphError, KeyError):
    """An edge label was not present in the graph's label universe."""

    def __init__(self, label: object):
        super().__init__(f"edge label not found: {label!r}")
        self.label = label


class SchemaError(GraphError):
    """An RDFS schema operation failed (unknown class, bad triple, ...)."""


class FrozenGraphError(GraphError):
    """A mutation was attempted on a frozen graph snapshot.

    :class:`~repro.graph.csr.FrozenGraph` objects are immutable CSR
    snapshots; mutate the source graph and ``freeze()`` again.
    """


class SparqlError(ReproError):
    """Base class for SPARQL engine failures."""


class SparqlSyntaxError(SparqlError):
    """The query text could not be tokenised or parsed.

    Carries the offending position so callers can point at the error.
    """

    def __init__(self, message: str, position: int | None = None):
        suffix = f" (at offset {position})" if position is not None else ""
        super().__init__(message + suffix)
        self.position = position


class SparqlEvaluationError(SparqlError):
    """The query parsed but could not be evaluated on the given graph."""


class ConstraintError(ReproError):
    """A label or substructure constraint is malformed for the graph."""


class IndexingError(ReproError):
    """Index construction failed or was mis-configured."""


class IndexingBudgetExceeded(IndexingError):
    """An index build exceeded its wall-clock budget.

    Mirrors the paper's Table 2, where the traditional landmark index of
    [19] is cut off after eight hours ("-" entries).  The partially built
    index is intentionally discarded; callers receive the elapsed time.
    """

    def __init__(self, elapsed_seconds: float, budget_seconds: float):
        super().__init__(
            f"index construction exceeded its budget: "
            f"{elapsed_seconds:.3f}s elapsed > {budget_seconds:.3f}s allowed"
        )
        self.elapsed_seconds = elapsed_seconds
        self.budget_seconds = budget_seconds


class WorkloadError(ReproError):
    """Evaluation-query generation could not satisfy its contract."""


class BenchmarkError(ReproError):
    """A benchmark experiment was mis-configured or failed to run."""


class ServiceError(ReproError):
    """Base class for failures of the query service (:mod:`repro.service`)."""


class ServiceConfigError(ServiceError):
    """The service was mis-configured at startup (bad paths, bad options)."""


class BadRequestError(ServiceError):
    """A client request was malformed or semantically invalid.

    Carries the HTTP status the JSON front end should answer with, so
    the handler can turn any :class:`BadRequestError` into a structured
    error payload without per-site status tables.
    """

    def __init__(
        self, message: str, status: int = 400, detail: dict | None = None
    ):
        super().__init__(message)
        self.status = status
        #: Optional machine-readable context included in the error body
        #: (e.g. which seam blocks an unsupported operation).
        self.detail = detail


class UnknownTenantError(BadRequestError):
    """A request named a tenant the registry does not host (HTTP 404)."""

    def __init__(self, tenant: object):
        super().__init__(f"unknown tenant: {tenant!r}", status=404)
        self.tenant = tenant


class TenantExistsError(BadRequestError):
    """A registration reused a tenant id already in the registry (HTTP 409)."""

    def __init__(self, tenant: object):
        super().__init__(f"tenant already registered: {tenant!r}", status=409)
        self.tenant = tenant


class UpdatesDisabledError(BadRequestError):
    """Live updates were not enabled for this server (HTTP 403).

    ``POST /edges`` is an admin operation; it must be opted into with
    ``serve --allow-updates`` (or ``create_server(allow_updates=True)``).
    """

    def __init__(self) -> None:
        super().__init__(
            "live updates are disabled on this server; restart with "
            "--allow-updates to accept POST /edges",
            status=403,
        )


class ReadOnlyServiceError(BadRequestError):
    """The service is a read-only follower; writes must go to the leader.

    Raised by :meth:`~repro.service.app.QueryService.handle_updates` when
    the service was started with ``serve --follow`` (HTTP 403).  The
    ``detail`` names the role so clients can distinguish "updates are an
    opt-in admin operation" (:class:`UpdatesDisabledError`) from "this
    replica republishes a leader's log and never accepts writes".
    """

    def __init__(self) -> None:
        super().__init__(
            "this server is a read-only follower; apply updates on the "
            "leader whose write-ahead log it tails",
            status=403,
            detail={"role": "follower"},
        )


class DeadlineExceededError(BadRequestError):
    """A request ran past its end-to-end deadline (HTTP 504).

    Raised wherever the budget is checked — the service execute seam,
    the evaluator outer loops, the batch executor, each scatter-gather
    round, and remote shard workers (the remaining budget rides the
    ``/shard/<id>/expand`` wire).  ``detail`` carries partial accounting:
    where the budget ran out, the elapsed vs. allotted milliseconds, and
    whatever progress telemetry the raising layer had (rounds completed,
    vertices passed), so a timed-out client still learns what its budget
    bought.
    """

    def __init__(
        self,
        where: str,
        *,
        elapsed_ms: float,
        budget_ms: float,
        partial: dict | None = None,
    ):
        detail: dict = {
            "where": where,
            "elapsed_ms": round(elapsed_ms, 3),
            "budget_ms": round(budget_ms, 3),
        }
        if partial:
            detail["partial"] = partial
        super().__init__(
            f"deadline exceeded in {where}: {elapsed_ms:.1f}ms elapsed "
            f"of a {budget_ms:.1f}ms budget",
            status=504,
            detail=detail,
        )
        self.where = where
        self.elapsed_ms = elapsed_ms
        self.budget_ms = budget_ms


class ShardUnavailableError(BadRequestError):
    """A shard worker stayed down past the retry budget (HTTP 503).

    The fail-fast half of graceful degradation: without
    ``--degraded-answers`` the coordinator refuses to answer from a
    partial fleet — a sound-but-\"unknown\" answer must be opted into —
    and names the shard so operators know *which* worker to look at.
    """

    def __init__(self, shard: int, reason: str, detail: dict | None = None):
        merged = {"shard": shard, "reason": reason}
        if detail:
            merged.update(detail)
        super().__init__(
            f"shard {shard} is unavailable: {reason}",
            status=503,
            detail=merged,
        )
        self.shard = shard


class OverloadedError(BadRequestError):
    """Admission control shed this request (HTTP 429 + ``Retry-After``).

    Raised when a tenant's concurrent-request cap is reached and its
    wait queue is full (or the bounded wait timed out).  ``retry_after``
    is the client back-off hint the HTTP layer also sends as a
    ``Retry-After`` header.
    """

    def __init__(
        self, message: str, *, retry_after: float = 1.0,
        detail: dict | None = None,
    ):
        merged = {"retry_after_seconds": retry_after}
        if detail:
            merged.update(detail)
        super().__init__(message, status=429, detail=merged)
        self.retry_after = retry_after
        #: Extra response headers the HTTP layer sends with the error.
        self.headers = {"Retry-After": str(max(1, round(retry_after)))}


class CircuitOpenError(ServiceError):
    """A circuit breaker rejected a call without attempting it.

    Internal to the resilience layer: the coordinator converts it into a
    degraded answer or a :class:`ShardUnavailableError`, so it never
    crosses the HTTP boundary itself.
    """

    def __init__(self, shard: int, state: str):
        super().__init__(
            f"circuit breaker for shard {shard} is {state}; call rejected"
        )
        self.shard = shard
        self.state = state


class UpdatesUnsupportedError(BadRequestError):
    """The service topology cannot apply live updates (HTTP 501).

    Historical note: sharded services answered ``POST /edges`` with this
    until slice-epoch propagation landed; today the only raiser left is
    third-party topologies that opt out explicitly.  Kept because the
    HTTP error table maps it to a structured 501.
    """

    def __init__(self, message: str, detail: dict | None = None):
        super().__init__(message, status=501, detail=detail)


class SliceFileError(ServiceConfigError):
    """A serialized graph slice could not be read or validated.

    Raised by :mod:`repro.shard.slicefile` on truncated files, version
    mismatches, checksum/plan-hash disagreements and structurally
    malformed documents — a worker must refuse to boot (or to stage an
    update) rather than serve garbage answers from a half-read slice.
    """


class ShardHandshakeError(ServiceConfigError):
    """A remote shard worker refused (or failed) the startup handshake.

    The coordinator attaches ``--worker-url`` workers only after each
    one's ``GET /shard/<id>`` descriptor agrees on the plan hash and
    protocol version; a disagreement means the worker is serving a slice
    cut from a different plan and composing with it would be silently
    wrong.  ``detail`` carries both sides' view.
    """

    def __init__(self, message: str, detail: dict | None = None):
        super().__init__(message)
        self.detail = detail


class RemoteShardError(ServiceError):
    """A remote shard worker answered the wire with an HTTP error.

    Raised by :class:`~repro.shard.worker.HttpShardWorker` for non-2xx
    responses that are not structured 504s (those surface as
    :class:`DeadlineExceededError`).  Carries the status and the remote
    error body so the coordinator's failure accounting names the cause.
    """

    def __init__(self, shard: int, status: int, message: str):
        super().__init__(
            f"shard {shard} remote call failed with HTTP {status}: {message}"
        )
        self.shard = shard
        self.status = status


class WalError(ServiceError):
    """Base class for write-ahead-log failures (:mod:`repro.wal`)."""


class WalCorruptionError(WalError):
    """A WAL segment or snapshot could not be decoded.

    A *trailing* partial line in the newest segment is not corruption —
    that is the expected shape of a crash mid-append and replay tolerates
    it — but garbage in the middle of the log, an unreadable snapshot,
    or a malformed record is.
    """


class WalReplayError(WalError):
    """Replay could not reconverge to the logged epoch history.

    Raised on an epoch gap between consecutive records (a segment was
    deleted out from under the log) or on a content-fingerprint mismatch
    after applying a record (the base graph the replay started from is
    not the graph the log was written against).
    """
