"""Short-circuit router: sound bounds ahead of the exact evaluators.

The router sits in the :meth:`QueryService._execute` seam — after the
planner (so trivial and forced plans never reach it) and after the
result cache — and tries to settle the query without INS/UIS*:

* **definite-No** — if the source has no out-edge under the query's
  label mask, the target no in-edge (O(1) bitmask tests, ``s != t``
  only), or the label-blind :class:`~repro.approx.bounds.BoundsIndex`
  says ``t`` is unreachable from ``s``, the answer is False.  Sound
  because every LSCR witness path is in particular an ``s -> t`` path
  under ``L``.
* **definite-Yes** — a remembered witness path for the same canonical
  query that still verifies against the *current* graph and constraint
  (:class:`~repro.approx.witness.WitnessCache`).
* **uncertain** — everything else falls through to the exact
  evaluators; in ``mode=approximate`` the router instead answers True
  from the upper bound alone (one-sided error) and samples exact
  re-checks at ``recheck_rate`` to account the observed false rate.

The only query the No path refuses to touch is ``s == t``: label-blind
self-reachability is trivially true, yet the LSCR answer hinges on a
cycle through a satisfying vertex, so no sound No exists there (the
planner makes the same call for its trivial cases).

Everything here is exact bookkeeping around sound inferences — the
*only* place an answer can differ from the exact service is the opt-in
approximate mode, and that difference is measured, not guessed:
``false_rate`` in :meth:`stats` is mismatches over sampled re-checks.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.core.result import QueryResult
from repro.core.witness import WitnessPath, find_witness, verify_witness
from repro.approx.witness import WitnessCache

__all__ = [
    "APPROX_ALGORITHM",
    "BOUNDS_ALGORITHM",
    "MODES",
    "SHORT_CIRCUIT_ALGORITHMS",
    "WITNESS_ALGORITHM",
    "ApproxRouter",
    "RouteDecision",
]

#: Algorithm tags stamped on router-settled results.  ``bounds`` and
#: ``witness`` answers are exact; ``approx`` answers are best-effort.
BOUNDS_ALGORITHM = "bounds"
WITNESS_ALGORITHM = "witness"
APPROX_ALGORITHM = "approx"
SHORT_CIRCUIT_ALGORITHMS = (BOUNDS_ALGORITHM, WITNESS_ALGORITHM)

#: Valid per-request answer modes.
MODES = ("exact", "approximate")


@dataclass(frozen=True)
class RouteDecision:
    """A settled short-circuit: the result plus why it was sound."""

    result: QueryResult
    verdict: str  # "no-mask" | "no-bounds" | "yes-witness"


class ApproxRouter:
    """Per-service routing state: witness cache, mode default, accounting.

    One router serves every epoch of its service — the bounds index
    rides the epoch (it describes one snapshot), while the witness
    cache and counters live here so they survive epoch swaps.
    """

    def __init__(
        self,
        *,
        approx_default: bool = False,
        recheck_rate: float = 0.05,
        witness_cache_size: int = 1024,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= recheck_rate <= 1.0:
            raise ValueError(
                f"recheck_rate must be within [0, 1], got {recheck_rate}"
            )
        self.default_mode = "approximate" if approx_default else "exact"
        self.recheck_rate = recheck_rate
        self.witnesses = WitnessCache(max_size=witness_cache_size)
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._routed = 0
        self._no_mask = 0
        self._no_bounds = 0
        self._yes_witness = 0
        self._fallthrough = 0
        self._approximate_answers = 0
        self._rechecks = 0
        self._recheck_mismatches = 0

    # ------------------------------------------------------------------
    # mode resolution
    # ------------------------------------------------------------------

    def resolve_mode(self, mode: str | None) -> str:
        """The effective mode for one request (None -> service default)."""
        if mode is None:
            return self.default_mode
        if mode not in MODES:
            raise ValueError(
                f"mode must be one of {MODES}, got {mode!r}"
            )
        return mode

    # ------------------------------------------------------------------
    # the routing decision
    # ------------------------------------------------------------------

    def decide(self, plan: Any, epoch: Any) -> RouteDecision | None:
        """Try to settle ``plan`` soundly; None means uncertain band.

        Sound in both directions: a returned No is backed by a
        reachability upper bound, a returned Yes by a witness path that
        verified against the current epoch's graph and constraint.
        """
        started = time.perf_counter()
        with self._lock:
            self._routed += 1
        query = plan.query
        graph = epoch.graph
        if query.source != query.target:
            s = graph.vid(query.source)
            t = graph.vid(query.target)
            mask = query.labels.mask_for(graph)
            # O(1) label-aware degree tests: no out-edge from s (or
            # in-edge to t) under L means no path under L at all.
            if not graph.out_label_mask(s) & mask or not graph.in_label_mask(t) & mask:
                with self._lock:
                    self._no_mask += 1
                # A proven No makes any remembered witness stale.
                self.witnesses.invalidate(plan.key)
                return RouteDecision(
                    self._settled(False, BOUNDS_ALGORITHM, started), "no-mask"
                )
            bounds = epoch.bounds
            if bounds is not None and not bounds.maybe_reachable(s, t):
                with self._lock:
                    self._no_bounds += 1
                self.witnesses.invalidate(plan.key)
                return RouteDecision(
                    self._settled(False, BOUNDS_ALGORITHM, started), "no-bounds"
                )
        witness = self.witnesses.get(plan.key)
        if witness is not None:
            if self._verify(graph, query, witness):
                with self._lock:
                    self._yes_witness += 1
                result = QueryResult(
                    answer=True,
                    algorithm=WITNESS_ALGORITHM,
                    seconds=time.perf_counter() - started,
                    passed_vertices=len(witness.vertices()),
                )
                return RouteDecision(result, "yes-witness")
            self.witnesses.invalidate(plan.key)
        return None

    @staticmethod
    def _settled(answer: bool, algorithm: str, started: float) -> QueryResult:
        return QueryResult(
            answer=answer,
            algorithm=algorithm,
            seconds=time.perf_counter() - started,
            passed_vertices=0,
        )

    @staticmethod
    def _verify(graph: Any, query: Any, witness: WitnessPath) -> bool:
        """Exception-safe re-verification against the current graph."""
        try:
            return verify_witness(graph, query, witness)
        except (KeyError, ValueError):
            # An update removed a vertex/label the witness mentions.
            return False

    # ------------------------------------------------------------------
    # uncertain band
    # ------------------------------------------------------------------

    def record_fallthrough(self) -> None:
        with self._lock:
            self._fallthrough += 1

    def approximate_result(self) -> QueryResult:
        """The uncertain-band guess in ``mode=approximate``: True.

        The upper bound already said a path may exist; answering True
        makes the error one-sided (only false positives, when the label
        or substructure constraint prunes every path).
        """
        with self._lock:
            self._approximate_answers += 1
        return QueryResult(
            answer=True,
            algorithm=APPROX_ALGORITHM,
            seconds=0.0,
            passed_vertices=0,
        )

    def should_recheck(self) -> bool:
        """Sample one approximate answer for an exact re-check."""
        if self.recheck_rate <= 0.0:
            return False
        with self._lock:
            return self._rng.random() < self.recheck_rate

    def record_recheck(self, mismatch: bool) -> None:
        with self._lock:
            self._rechecks += 1
            if mismatch:
                self._recheck_mismatches += 1

    # ------------------------------------------------------------------
    # witness population
    # ------------------------------------------------------------------

    def remember_witness(self, plan: Any, epoch: Any) -> bool:
        """After an exact True answer, extract and cache the witness.

        Reuses the epoch's cached ``V(S, G)`` so the SPARQL evaluation
        the exact run just performed is not repeated.  Returns whether
        a witness was stored (it can legitimately fail only if the
        graph changed between the answer and the extraction — callers
        ignore the outcome).
        """
        if self.witnesses.max_size == 0:
            # Uncached service: skip the extraction BFS, not just the put.
            return False
        query = plan.query
        try:
            satisfying = set(epoch.candidates.get(query.constraint, epoch.graph))
            witness = find_witness(epoch.graph, query, satisfying=satisfying)
        except (KeyError, ValueError):
            return False
        if witness is None:
            return False
        self.witnesses.put(plan.key, witness)
        return True

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """The ``/stats`` ``approx`` section (minus the bounds shape)."""
        with self._lock:
            routed = self._routed
            no_mask = self._no_mask
            no_bounds = self._no_bounds
            yes_witness = self._yes_witness
            fallthrough = self._fallthrough
            approximate = self._approximate_answers
            rechecks = self._rechecks
            mismatches = self._recheck_mismatches
        short_circuit = no_mask + no_bounds + yes_witness
        return {
            "enabled": True,
            "default_mode": self.default_mode,
            "recheck_rate": self.recheck_rate,
            "routed": routed,
            "short_circuit_no": no_mask + no_bounds,
            "short_circuit_no_mask": no_mask,
            "short_circuit_no_bounds": no_bounds,
            "short_circuit_yes": yes_witness,
            "short_circuit_rate": short_circuit / routed if routed else 0.0,
            "exact_fallthrough": fallthrough,
            "approximate_answers": approximate,
            "rechecks": rechecks,
            "recheck_mismatches": mismatches,
            "false_rate": mismatches / rechecks if rechecks else 0.0,
            "witness_cache": self.witnesses.stats(),
        }
