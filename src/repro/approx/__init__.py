"""`repro.approx` — bounded-answer tier with exact fallback.

Sound short-circuit filters ahead of the two-phase LSCR evaluation,
grounded in *Approximate Evaluation of Label-Constrained Reachability
Queries* (Dumbrava et al.) with upper-bound index choices from the
Zhang/Bonifati/Özsu reachability-indexing survey:

* :mod:`repro.approx.bounds` — a label-blind reachability upper bound
  (SCC condensation + exact bitset closure or GRAIL-style randomized
  intervals) built at freeze time and bundled into every
  :class:`~repro.service.epoch.GraphEpoch`.
* :mod:`repro.approx.witness` — an epoch-surviving LRU of verified
  witness paths, the definite-Yes lower bound.
* :mod:`repro.approx.router` — the `_execute`-seam router gluing both
  into definite-No / definite-Yes / uncertain routing, plus the opt-in
  ``mode=approximate`` with sampled-re-check false-rate accounting.
"""

from repro.approx.bounds import BoundsIndex, build_bounds
from repro.approx.router import (
    APPROX_ALGORITHM,
    BOUNDS_ALGORITHM,
    MODES,
    SHORT_CIRCUIT_ALGORITHMS,
    WITNESS_ALGORITHM,
    ApproxRouter,
    RouteDecision,
)
from repro.approx.witness import WitnessCache

__all__ = [
    "APPROX_ALGORITHM",
    "BOUNDS_ALGORITHM",
    "MODES",
    "SHORT_CIRCUIT_ALGORITHMS",
    "WITNESS_ALGORITHM",
    "ApproxRouter",
    "BoundsIndex",
    "RouteDecision",
    "WitnessCache",
    "build_bounds",
]
