"""Label-blind reachability upper bound for the approximate tier.

The bounds index answers one question — *could* there be any directed
path from ``s`` to ``t``, ignoring labels and constraints entirely — and
answers it in microseconds.  Because every LSCR witness path is in
particular an ``s -> t`` path, ``maybe_reachable(s, t) == False`` is a
**sound definite-No** for the full label-and-substructure query: the
router can refuse without ever touching INS/UIS*.

Construction condenses the graph's strongly connected components with
one iterative Tarjan pass, then picks a representation by condensation
size:

* ``closure`` — at or below ``closure_limit`` components, an exact
  transitive closure over the condensation as per-component Python-int
  bitsets, filled by one dynamic-programming sweep in reverse
  topological order (Tarjan emits components in exactly that order).
  Queries are a two-load bit test and the answer is *exact* label-blind
  reachability, so the uncertain band is as narrow as it can be.
* ``interval`` — above the limit, GRAIL-style randomized interval
  labels: ``k`` independent post-order DFS traversals over the
  condensation, each recording ``post[c]`` and ``low[c]`` (the minimum
  post-order over everything reachable from ``c``).  ``u`` reaches
  ``v`` only if ``low[u] <= post[v] <= post[u]`` in **every** traversal
  — a necessary condition, so a miss in any traversal is still a sound
  definite-No while a pass merely means "maybe".

Both modes are immutable after construction and safe to share across
threads; the index is built at freeze time and rides the
:class:`~repro.service.epoch.GraphEpoch`, so every published epoch
(live updates, WAL replay, ``replace_graph``) carries bounds for
exactly its own snapshot.
"""

from __future__ import annotations

import random
import time
from typing import Any, Sequence

__all__ = ["BoundsIndex", "build_bounds"]

#: Condensations at or below this many components get the exact bitset
#: closure; larger graphs fall back to interval labels.  4096 components
#: cost at most 4096 * 512 bytes of bitset — ~2 MiB worst case.
DEFAULT_CLOSURE_LIMIT = 4096

#: Independent randomized DFS traversals in ``interval`` mode.
DEFAULT_INTERVAL_PASSES = 3


def _label_blind_adjacency(graph: Any) -> list[Sequence[int]]:
    """Per-vertex out-target slices, ignoring labels (dups tolerated)."""
    csr = getattr(graph, "_csr_out", None)
    if csr is not None:
        return csr.all_targets
    return [
        [t for _label, t in graph.out_edges(v)]
        for v in range(graph.num_vertices)
    ]


def _condense(adjacency: list[Sequence[int]]) -> tuple[list[int], list[list[int]]]:
    """Iterative Tarjan SCC.

    Returns ``(component_of, condensed)`` where ``component_of[v]`` is
    the component id of vertex ``v`` and ``condensed[c]`` lists ``c``'s
    distinct successor components.  Component ids are assigned in the
    order Tarjan completes them, i.e. **reverse topological order** of
    the condensation: every successor of ``c`` has an id smaller than
    ``c``.  The closure DP below leans on that invariant.
    """
    n = len(adjacency)
    UNVISITED = -1
    index_of = [UNVISITED] * n
    lowlink = [0] * n
    on_stack = [False] * n
    component_of = [UNVISITED] * n
    stack: list[int] = []
    counter = 0
    components = 0

    for root in range(n):
        if index_of[root] != UNVISITED:
            continue
        # Explicit work stack of (vertex, iterator position) frames.
        work = [(root, 0)]
        while work:
            v, pos = work.pop()
            if pos == 0:
                index_of[v] = lowlink[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = True
            recurse = False
            targets = adjacency[v]
            while pos < len(targets):
                w = targets[pos]
                pos += 1
                if index_of[w] == UNVISITED:
                    work.append((v, pos))
                    work.append((w, 0))
                    recurse = True
                    break
                if on_stack[w]:
                    if index_of[w] < lowlink[v]:
                        lowlink[v] = index_of[w]
            if recurse:
                continue
            if lowlink[v] == index_of[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component_of[w] = components
                    if w == v:
                        break
                components += 1
            if work:
                parent = work[-1][0]
                if lowlink[v] < lowlink[parent]:
                    lowlink[parent] = lowlink[v]

    condensed: list[set[int]] = [set() for _ in range(components)]
    for v in range(n):
        cv = component_of[v]
        bucket = condensed[cv]
        for w in adjacency[v]:
            cw = component_of[w]
            if cw != cv:
                bucket.add(cw)
    return component_of, [sorted(b) for b in condensed]


class BoundsIndex:
    """Immutable label-blind reachability upper bound over one snapshot."""

    __slots__ = (
        "mode",
        "vertex_count",
        "component_count",
        "build_seconds",
        "_component_of",
        "_closure",
        "_post",
        "_low",
    )

    def __init__(
        self,
        graph: Any,
        *,
        closure_limit: int = DEFAULT_CLOSURE_LIMIT,
        interval_passes: int = DEFAULT_INTERVAL_PASSES,
        seed: int = 0,
    ) -> None:
        started = time.perf_counter()
        adjacency = _label_blind_adjacency(graph)
        component_of, condensed = _condense(adjacency)
        self.vertex_count = len(adjacency)
        self.component_count = len(condensed)
        self._component_of = component_of
        if self.component_count <= closure_limit:
            self.mode = "closure"
            self._closure = self._build_closure(condensed)
            self._post = self._low = None
        else:
            self.mode = "interval"
            self._closure = None
            self._post, self._low = self._build_intervals(
                condensed, passes=max(1, interval_passes), seed=seed
            )
        self.build_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @staticmethod
    def _build_closure(condensed: list[list[int]]) -> list[int]:
        """Exact per-component reachability bitsets.

        Component ids are in reverse topological order, so walking
        ``0..n`` visits every successor before the component that needs
        it and the DP is a single pass.
        """
        closure = [0] * len(condensed)
        for c, successors in enumerate(condensed):
            bits = 1 << c
            for s in successors:
                bits |= closure[s]
            closure[c] = bits
        return closure

    @staticmethod
    def _build_intervals(
        condensed: list[list[int]], *, passes: int, seed: int
    ) -> tuple[list[list[int]], list[list[int]]]:
        """GRAIL labels: ``passes`` randomized post-order traversals."""
        n = len(condensed)
        rng = random.Random(seed)
        # Roots in topological order (ids descend toward sinks), so one
        # sweep from high ids covers every tree without restarts.
        posts: list[list[int]] = []
        lows: list[list[int]] = []
        for _ in range(passes):
            order = [sorted(s, key=lambda _s: rng.random()) for s in condensed]
            post = [-1] * n
            low = [0] * n
            clock = 0
            for root in range(n - 1, -1, -1):
                if post[root] != -1:
                    continue
                work = [(root, 0)]
                while work:
                    c, pos = work.pop()
                    if pos == 0:
                        low[c] = n  # sentinel: min() identity
                    successors = order[c]
                    recurse = False
                    while pos < len(successors):
                        s = successors[pos]
                        pos += 1
                        if post[s] == -1:
                            work.append((c, pos))
                            work.append((s, 0))
                            recurse = True
                            break
                        if low[s] < low[c]:
                            low[c] = low[s]
                    if recurse:
                        continue
                    post[c] = clock
                    clock += 1
                    if post[c] < low[c]:
                        low[c] = post[c]
                    if work:
                        parent = work[-1][0]
                        if low[c] < low[parent]:
                            low[parent] = low[c]
            posts.append(post)
            lows.append(low)
        return posts, lows

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def maybe_reachable(self, s: int, t: int) -> bool:
        """Upper bound: ``False`` means *definitely* no ``s -> t`` path.

        ``True`` is exact label-blind reachability in ``closure`` mode
        and "not excluded" in ``interval`` mode.
        """
        cs = self._component_of[s]
        ct = self._component_of[t]
        if cs == ct:
            return True
        closure = self._closure
        if closure is not None:
            return bool(closure[cs] >> ct & 1)
        for post, low in zip(self._post, self._low):
            if not (low[cs] <= post[ct] <= post[cs]):
                return False
        return True

    def describe(self) -> dict:
        """Shape summary for ``/stats``."""
        return {
            "mode": self.mode,
            "vertices": self.vertex_count,
            "components": self.component_count,
            "build_seconds": round(self.build_seconds, 6),
        }

    def __repr__(self) -> str:
        return (
            f"BoundsIndex(mode={self.mode!r}, |V|={self.vertex_count}, "
            f"|SCC|={self.component_count})"
        )


def build_bounds(
    graph: Any,
    *,
    closure_limit: int = DEFAULT_CLOSURE_LIMIT,
    interval_passes: int = DEFAULT_INTERVAL_PASSES,
    seed: int = 0,
) -> BoundsIndex:
    """Build the label-blind upper bound for one graph snapshot."""
    return BoundsIndex(
        graph,
        closure_limit=closure_limit,
        interval_passes=interval_passes,
        seed=seed,
    )
