"""Definite-Yes lower bound: an LRU cache of verified witness paths.

When the exact evaluators answer True, the router extracts the concrete
witness path (:func:`repro.core.witness.find_witness`) and remembers it
here, keyed by the planner's canonical query key.  A later repeat of the
same query re-validates the remembered path against the *current* graph
— edge existence, labels within ``L``, the satisfying vertex still
satisfying ``S`` — which costs a handful of dictionary probes plus one
single-vertex substructure match, orders of magnitude below INS/UIS*.

Because every hit re-verifies against the live snapshot, the cache is
deliberately **not** epoch-scoped: it survives epoch swaps, and entries
invalidated by an update simply fail verification and are dropped.  That
is what makes the witness tier worth having under live updates — the
result cache is namespaced by epoch id and empties on every publish,
while a witness whose edges survived the update keeps answering.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.core.witness import WitnessPath

__all__ = ["WitnessCache"]


class WitnessCache:
    """Thread-safe LRU of canonical-key -> :class:`WitnessPath`."""

    def __init__(self, max_size: int = 1024) -> None:
        if max_size < 0:
            raise ValueError(f"max_size must be >= 0, got {max_size}")
        self.max_size = max_size
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, WitnessPath] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._evictions = 0

    def get(self, key: tuple) -> WitnessPath | None:
        """The cached witness for ``key``, or None (counts hit/miss)."""
        with self._lock:
            witness = self._entries.get(key)
            if witness is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return witness

    def put(self, key: tuple, witness: WitnessPath) -> None:
        """Remember ``witness`` for ``key``, evicting LRU on overflow."""
        if self.max_size == 0:
            return
        with self._lock:
            self._entries[key] = witness
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self._evictions += 1

    def invalidate(self, key: tuple) -> None:
        """Drop ``key`` after its witness failed re-verification."""
        with self._lock:
            if self._entries.pop(key, None) is not None:
                self._invalidations += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "max_size": self.max_size,
                "hits": self._hits,
                "misses": self._misses,
                "invalidations": self._invalidations,
                "evictions": self._evictions,
            }
