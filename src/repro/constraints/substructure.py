"""Substructure constraints (Definition 2.2) and the ``SCck`` test.

A substructure constraint ``S = (?x, V_S, E_S, E_?)`` consists of a
designated variable ``?x``, concrete vertices ``V_S``, concrete edges
``E_S`` among them, and variable edges ``E_?`` each having at least one
variable endpoint — with ``?x`` required to occur in some element of
``E_?``.  Section 2 of the paper notes the equivalence with SPARQL basic
graph patterns (``S0`` ≡ ``SELECT ?x WHERE { ?x <friendOf> v3 . v3
<likes> ?y . }``), and Sections 4–5 exploit it: ``V(S, G)`` is obtained
from a SPARQL engine.

This module represents a constraint as a BGP plus the designated
variable and implements both uses the paper makes of it:

* :meth:`SubstructureConstraint.satisfied_by` / :class:`SubstructureChecker`
  — the per-vertex test ``SCck(v, S)`` used by UIS (Algorithm 1);
* :meth:`SubstructureConstraint.satisfying_vertices` — ``V(S, G)`` used
  by UIS* and INS.

Semantics of ``E_?`` (see DESIGN.md §5.2): SPARQL semantics are adopted —
every pattern must match at least one edge; ``u`` satisfies ``S`` iff the
BGP with ``?x := u`` has a solution.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.exceptions import ConstraintError
from repro.graph.labeled_graph import KnowledgeGraph
from repro.sparql.ast import SelectQuery, TriplePattern, Var
from repro.sparql.evaluator import bgp_is_satisfiable, compile_patterns, evaluate_bgp
from repro.sparql.parser import parse_select

__all__ = ["SubstructureConstraint", "SubstructureChecker"]


class SubstructureConstraint:
    """A substructure constraint as a BGP with designated variable ``?x``."""

    __slots__ = ("patterns", "variable")

    def __init__(
        self,
        patterns: Iterable[TriplePattern],
        variable: str = "x",
    ) -> None:
        self.patterns: tuple[TriplePattern, ...] = tuple(patterns)
        self.variable = variable
        self._validate()

    def _validate(self) -> None:
        if not self.patterns:
            raise ConstraintError("a substructure constraint needs at least one pattern")
        target = Var(self.variable)
        occurs = any(target in pattern.variables() for pattern in self.patterns)
        if not occurs:
            raise ConstraintError(
                f"designated variable ?{self.variable} does not occur in the pattern "
                "(Definition 2.2 requires ?x to appear in E_?)"
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_sparql(cls, text: str, variable: str | None = None) -> "SubstructureConstraint":
        """Parse a ``SELECT ?x WHERE { ... }`` constraint (Table 3 style).

        When ``variable`` is omitted, the single projected variable is
        taken as the designated ``?x``.
        """
        query = parse_select(text)
        if variable is None:
            projection = query.effective_projection()
            if len(projection) != 1:
                raise ConstraintError(
                    "constraint query must project exactly one variable "
                    f"(got {len(projection)}); pass variable= to disambiguate"
                )
            variable = projection[0].name
        return cls(query.patterns, variable)

    @classmethod
    def from_parts(
        cls,
        concrete_edges: Iterable[tuple[Hashable, str, Hashable]],
        variable_edges: Iterable[TriplePattern],
        variable: str = "x",
    ) -> "SubstructureConstraint":
        """Build from Definition 2.2's parts.

        ``concrete_edges`` is ``E_S`` (plain triples over ``V_S``);
        ``variable_edges`` is ``E_?`` (patterns with variable endpoints).
        """
        patterns = [TriplePattern(str(s), label, str(t)) for s, label, t in concrete_edges]
        patterns.extend(variable_edges)
        return cls(patterns, variable)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    def to_select(self) -> SelectQuery:
        """The constraint as ``SELECT DISTINCT ?x WHERE { ... }``."""
        return SelectQuery(
            projection=(Var(self.variable),),
            patterns=self.patterns,
            distinct=True,
        )

    def to_sparql(self) -> str:
        """The SPARQL text of :meth:`to_select` (round-trips via parser)."""
        return str(self.to_select())

    @property
    def size(self) -> int:
        """Pattern count — the ``|V_S| + |E_S| + |E_?|`` cost driver."""
        return len(self.patterns)

    def variables(self) -> tuple[Var, ...]:
        """All variables of the pattern (``?x`` first if present)."""
        ordered: list[Var] = []
        target = Var(self.variable)
        for pattern in self.patterns:
            for var in pattern.variables():
                if var not in ordered:
                    ordered.append(var)
        if target in ordered:
            ordered.remove(target)
            ordered.insert(0, target)
        return tuple(ordered)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SubstructureConstraint):
            return self.patterns == other.patterns and self.variable == other.variable
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.patterns, self.variable))

    def __repr__(self) -> str:
        return f"SubstructureConstraint({self.to_sparql()!r})"

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def satisfied_by(self, graph: KnowledgeGraph, vertex_id: int) -> bool:
        """``SCck(v, S)``: does ``vertex_id`` satisfy the constraint?"""
        return bgp_is_satisfiable(graph, self.patterns, {self.variable: vertex_id})

    def satisfying_vertices(self, graph: KnowledgeGraph) -> list[int]:
        """``V(S, G)``: distinct satisfying vertex ids, first-seen order."""
        ordered: list[int] = []
        seen: set[int] = set()
        for solution in evaluate_bgp(graph, self.patterns):
            value = solution[self.variable]
            if value not in seen:
                seen.add(value)
                ordered.append(value)
        return ordered


class SubstructureChecker:
    """Compiled per-graph ``SCck``: the hot-loop form used by UIS.

    Compiles the pattern once, counts invocations (the paper's complexity
    analysis bounds ``SCck`` calls by ``|V|``), and memoises verdicts —
    UIS may ask about the same vertex again after a ``close`` upgrade.
    """

    __slots__ = ("graph", "constraint", "calls", "_unsatisfiable", "_cache")

    def __init__(self, graph: KnowledgeGraph, constraint: SubstructureConstraint) -> None:
        self.graph = graph
        self.constraint = constraint
        self.calls = 0
        self._cache: dict[int, bool] = {}
        # Compile eagerly so a structurally-empty constraint short-circuits
        # every later check.
        self._unsatisfiable = compile_patterns(graph, constraint.patterns) is None

    def __call__(self, vertex_id: int) -> bool:
        self.calls += 1
        if self._unsatisfiable:
            return False
        cached = self._cache.get(vertex_id)
        if cached is None:
            cached = bgp_is_satisfiable(
                self.graph,
                self.constraint.patterns,
                {self.constraint.variable: vertex_id},
            )
            self._cache[vertex_id] = cached
        return cached
