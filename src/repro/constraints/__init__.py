"""Label and substructure constraints (Definitions 2.2–2.4)."""

from repro.constraints.label_constraint import LabelConstraint
from repro.constraints.substructure import SubstructureChecker, SubstructureConstraint

__all__ = ["LabelConstraint", "SubstructureChecker", "SubstructureConstraint"]
