"""Label constraints (the ``L ⊆ 𝕃`` of Definition 2.4).

A label constraint is just a set of edge-label names; algorithms compile
it to a bitmask against a graph's label universe once per query and then
expand only edges whose label bit is set.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.exceptions import ConstraintError
from repro.graph.labeled_graph import KnowledgeGraph

__all__ = ["LabelConstraint"]


class LabelConstraint:
    """An immutable set of allowed edge labels.

    >>> constraint = LabelConstraint(["friendOf", "follows"])
    >>> "friendOf" in constraint
    True
    >>> len(constraint)
    2
    """

    __slots__ = ("_labels",)

    def __init__(self, labels: Iterable[str]) -> None:
        self._labels = frozenset(labels)
        if not self._labels:
            raise ConstraintError("a label constraint must contain at least one label")

    @property
    def labels(self) -> frozenset[str]:
        """The allowed label names."""
        return self._labels

    def __contains__(self, label: str) -> bool:
        return label in self._labels

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._labels))

    def __len__(self) -> int:
        return len(self._labels)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LabelConstraint):
            return self._labels == other._labels
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._labels)

    def __repr__(self) -> str:
        return f"LabelConstraint({sorted(self._labels)!r})"

    def mask_for(self, graph: KnowledgeGraph, strict: bool = False) -> int:
        """Bitmask of this constraint in ``graph``'s label universe.

        Labels absent from the graph cannot appear on any path, so by
        default they are silently dropped (a query mentioning them is
        simply harder to satisfy).  With ``strict`` they raise
        :class:`ConstraintError` instead.
        """
        mask = 0
        for label in self._labels:
            if label in graph.labels:
                mask |= 1 << graph.labels.id_of(label)
            elif strict:
                raise ConstraintError(f"label {label!r} does not occur in the graph")
        return mask

    def union(self, other: "LabelConstraint") -> "LabelConstraint":
        """Constraint allowing either side's labels."""
        return LabelConstraint(self._labels | other._labels)

    def is_subset_of(self, other: "LabelConstraint") -> bool:
        """True if every allowed label of self is allowed by ``other``."""
        return self._labels <= other._labels
