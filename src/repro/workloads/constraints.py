"""Random substructure constraints with controlled ``|V(S, G)|`` —
the Section 6.2 protocol for the YAGO experiments (Figure 15).

The paper generates constraints whose satisfying-vertex count lands in a
target order of magnitude: ``|V(S, G)| ∈ [0.8m, 1.2m]`` for
``m ∈ {10¹, 10², ...}``.  The construction mirrors the paper's
description: start from a random instance vertex and one of its incident
edges (a selective single-pattern constraint with that vertex in
``V(S, G)``), then *gradually and randomly adjust* the parts —

* **too small** → relax: replace a constant endpoint with a fresh
  variable, or drop a surplus pattern;
* **too large** → tighten: anchor a new pattern on an edge incident to a
  current satisfying vertex (keeping it satisfying, shrinking the set).

Each step re-evaluates ``|V(S, G)|`` exactly.  If a walk stalls, it
restarts from a different seed vertex; after ``max_restarts`` the best
constraint found is returned (or :class:`WorkloadError` under
``strict``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.constraints.substructure import SubstructureConstraint
from repro.exceptions import ConstraintError, WorkloadError
from repro.graph.labeled_graph import KnowledgeGraph
from repro.sparql.ast import TriplePattern, Var
from repro.utils.rng import make_rng

__all__ = ["MagnitudeConstraint", "random_constraint_with_magnitude"]


@dataclass(frozen=True)
class MagnitudeConstraint:
    """A generated constraint with its measured ``|V(S, G)|``."""

    constraint: SubstructureConstraint
    cardinality: int
    magnitude: int
    in_window: bool


def random_constraint_with_magnitude(
    graph: KnowledgeGraph,
    magnitude: int,
    rng: int | random.Random | None = 0,
    tolerance: float = 0.2,
    max_steps: int = 40,
    max_restarts: int = 8,
    strict: bool = False,
) -> MagnitudeConstraint:
    """Generate a constraint with ``|V(S,G)| ∈ [(1-tol)·m, (1+tol)·m]``."""
    rng = make_rng(rng)
    low = max(1, int((1.0 - tolerance) * magnitude))
    high = max(low, int((1.0 + tolerance) * magnitude))

    best: tuple[int, SubstructureConstraint, int] | None = None  # (gap, S, |V|)
    for _restart in range(max_restarts):
        candidate = _seed_constraint(graph, rng)
        if candidate is None:
            continue
        patterns, fresh_counter = candidate
        for _step in range(max_steps):
            constraint = _try_build(patterns)
            if constraint is None:
                break
            cardinality = len(constraint.satisfying_vertices(graph))
            gap = abs(cardinality - magnitude)
            if best is None or gap < best[0]:
                best = (gap, constraint, cardinality)
            if low <= cardinality <= high:
                return MagnitudeConstraint(
                    constraint=constraint,
                    cardinality=cardinality,
                    magnitude=magnitude,
                    in_window=True,
                )
            if cardinality < low:
                changed = _relax(patterns, fresh_counter, rng)
            else:
                changed = _tighten(graph, constraint, patterns, rng)
            if not changed:
                break
    if best is None or strict:
        raise WorkloadError(
            f"could not generate a constraint with |V(S,G)| ≈ {magnitude} "
            f"after {max_restarts} restarts"
            + ("" if best is None else f" (closest: {best[2]})")
        )
    return MagnitudeConstraint(
        constraint=best[1],
        cardinality=best[2],
        magnitude=magnitude,
        in_window=False,
    )


# ----------------------------------------------------------------------
# walk steps
# ----------------------------------------------------------------------


def _seed_constraint(
    graph: KnowledgeGraph, rng: random.Random
) -> tuple[list[TriplePattern], list[int]] | None:
    """One pattern built from a random vertex's random incident edge."""
    for _ in range(30):
        vertex = rng.randrange(graph.num_vertices)
        out_edges = list(graph.out_edges(vertex))
        in_edges = list(graph.in_edges(vertex))
        if not out_edges and not in_edges:
            continue
        use_out = bool(out_edges) and (not in_edges or rng.random() < 0.5)
        if use_out:
            label_id, other = rng.choice(out_edges)
            pattern = TriplePattern(
                Var("x"), graph.label_name(label_id), str(graph.name_of(other))
            )
        else:
            label_id, other = rng.choice(in_edges)
            pattern = TriplePattern(
                str(graph.name_of(other)), graph.label_name(label_id), Var("x")
            )
        return [pattern], [0]
    return None


def _try_build(patterns: list[TriplePattern]) -> SubstructureConstraint | None:
    try:
        return SubstructureConstraint(patterns)
    except ConstraintError:
        return None


def _relax(
    patterns: list[TriplePattern],
    fresh_counter: list[int],
    rng: random.Random,
) -> bool:
    """Loosen the constraint: drop a pattern or variable-ise a constant."""
    # Prefer dropping a surplus pattern (keeping ?x present).
    if len(patterns) > 1:
        droppable = [
            i
            for i in range(len(patterns))
            if _keeps_designated(patterns, skip=i)
        ]
        if droppable:
            del patterns[rng.choice(droppable)]
            return True
    # Otherwise replace a constant endpoint with a fresh variable.
    candidates = [
        (i, position)
        for i, pattern in enumerate(patterns)
        for position in ("subject", "object")
        if not isinstance(getattr(pattern, position), Var)
    ]
    if not candidates:
        return False
    i, position = rng.choice(candidates)
    fresh_counter[0] += 1
    fresh = Var(f"r{fresh_counter[0]}")
    pattern = patterns[i]
    if position == "subject":
        patterns[i] = TriplePattern(fresh, pattern.predicate, pattern.object)
    else:
        patterns[i] = TriplePattern(pattern.subject, pattern.predicate, fresh)
    return True


def _tighten(
    graph: KnowledgeGraph,
    constraint: SubstructureConstraint,
    patterns: list[TriplePattern],
    rng: random.Random,
) -> bool:
    """Shrink ``V(S, G)`` by anchoring a new pattern on a satisfier."""
    satisfying = constraint.satisfying_vertices(graph)
    if not satisfying:
        return False
    existing = set(patterns)
    for _ in range(20):
        anchor = rng.choice(satisfying)
        out_edges = list(graph.out_edges(anchor))
        in_edges = list(graph.in_edges(anchor))
        if not out_edges and not in_edges:
            continue
        use_out = bool(out_edges) and (not in_edges or rng.random() < 0.5)
        if use_out:
            label_id, other = rng.choice(out_edges)
            pattern = TriplePattern(
                Var("x"), graph.label_name(label_id), str(graph.name_of(other))
            )
        else:
            label_id, other = rng.choice(in_edges)
            pattern = TriplePattern(
                str(graph.name_of(other)), graph.label_name(label_id), Var("x")
            )
        if pattern not in existing:
            patterns.append(pattern)
            return True
    return False


def _keeps_designated(patterns: list[TriplePattern], skip: int) -> bool:
    """Would ``?x`` still occur after removing pattern ``skip``?"""
    target = Var("x")
    return any(
        target in pattern.variables()
        for i, pattern in enumerate(patterns)
        if i != skip
    )
