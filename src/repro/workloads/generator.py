"""Evaluation-query generation — the Section 6.1.1 protocol.

For a substructure constraint ``S`` and a dataset ``D`` the paper builds
two groups per experiment cell: true-queries ``Qt`` and false-queries
``Qf``, under three controls that this module reproduces:

1. **label-constraint sizes** are uniform across the three buckets
   ``[0.2t, 0.4t)``, ``[0.4t, 0.6t)``, ``[0.6t, 0.8t]`` of the label
   universe size ``t`` (the paper holds the label constraint's influence
   fixed because LCR work already studied it);
2. **targets are not nearby**: a label-constrained BFS from ``s`` runs
   ``log |V|`` rounds and ``t`` is drawn from the *unexplored* vertices,
   plus the search-tree-size filter ``|T| ≥ min`` with ``min`` drawn
   from ``[10·log|V|, |V|/(10·log|V|)]`` (window degenerates gracefully
   at repro scale — see :func:`tree_size_window`);
3. **false-query types are balanced**: ``s ↛_L t ∧ s ⇝_S t``,
   ``s ⇝_L t ∧ s ↛_S t`` and ``s ↛_L t ∧ s ↛_S t`` appear in equal
   proportion.  (A fourth combination — both reachabilities hold
   separately but no single path satisfies both — is possible though the
   paper does not list it; such queries are kept but tracked under
   ``"conjunction_blocked"`` and exempted from the balance rule.)

UIS classifies each candidate query (the paper's own choice) and its
passed-vertex count stands in for the search-tree size ``|T|``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.constraints.label_constraint import LabelConstraint
from repro.constraints.substructure import SubstructureConstraint
from repro.core.lcr import bfs_distance_ring, lcr_closure, lcr_reachable
from repro.core.query import LSCRQuery
from repro.core.uis import UIS
from repro.exceptions import WorkloadError
from repro.graph.labeled_graph import KnowledgeGraph
from repro.graph.views import reverse
from repro.utils.rng import make_rng

__all__ = [
    "WorkloadQuery",
    "Workload",
    "generate_workload",
    "label_bucket_bounds",
    "tree_size_window",
    "FALSE_TYPES",
]

#: The paper's three balanced false-query types.
FALSE_TYPES: tuple[str, ...] = ("label_blocked", "structure_blocked", "both_blocked")


@dataclass(frozen=True)
class WorkloadQuery:
    """One generated evaluation query with its provenance."""

    query: LSCRQuery
    expected: bool
    #: Search-tree size measured by the classifying UIS run.
    tree_size: int
    #: Which of the three label-size buckets the constraint fell in (0-2).
    label_bucket: int
    #: For false queries, one of :data:`FALSE_TYPES` (or
    #: ``"conjunction_blocked"`` for the unlisted fourth combination).
    false_type: str | None = None


@dataclass
class Workload:
    """The two query groups of one experiment cell."""

    true_queries: list[WorkloadQuery] = field(default_factory=list)
    false_queries: list[WorkloadQuery] = field(default_factory=list)
    attempts: int = 0

    def all_queries(self) -> list[WorkloadQuery]:
        """Both groups concatenated (true first)."""
        return self.true_queries + self.false_queries


def label_bucket_bounds(universe_size: int, bucket: int) -> tuple[int, int]:
    """Inclusive size bounds of bucket 0/1/2 for a ``t``-label universe.

    Buckets are ``[0.2t, 0.4t)``, ``[0.4t, 0.6t)``, ``[0.6t, 0.8t]``,
    with floors so that small universes still give non-empty ranges.
    """
    t = universe_size
    edges = (0.2 * t, 0.4 * t, 0.6 * t, 0.8 * t)
    if bucket == 0:
        low, high = edges[0], edges[1] - 1e-9
    elif bucket == 1:
        low, high = edges[1], edges[2] - 1e-9
    elif bucket == 2:
        low, high = edges[2], edges[3]
    else:
        raise ValueError(f"bucket must be 0, 1 or 2, got {bucket}")
    low_int = max(1, math.ceil(low))
    high_int = max(low_int, min(t, math.floor(high)))
    return low_int, high_int


def tree_size_window(num_vertices: int) -> tuple[int, int]:
    """The paper's ``min`` range ``[10·log|V|, |V|/(10·log|V|)]``.

    At full paper scale the window is wide and increasing; at repro
    scale it inverts (both ends meet around |V| ≈ 10⁴), in which case it
    collapses to ``[log|V|, √|V|]`` — still rejecting trivial
    few-vertex searches without starving generation.
    """
    if num_vertices < 2:
        return 1, 1
    log_v = math.log2(num_vertices)
    low = 10.0 * log_v
    high = num_vertices / (10.0 * log_v)
    if high < low:
        return max(1, int(log_v)), max(2, int(math.sqrt(num_vertices)))
    return max(1, int(low)), max(2, int(high))


def generate_workload(
    graph: KnowledgeGraph,
    constraint: SubstructureConstraint,
    num_true: int,
    num_false: int,
    rng: int | random.Random | None = 0,
    bfs_rounds: int | None = None,
    max_attempts: int | None = None,
    strict: bool = False,
) -> Workload:
    """Generate ``num_true`` + ``num_false`` queries per the protocol.

    With ``strict`` a shortfall raises :class:`WorkloadError`; otherwise
    the workload is returned with as many queries as could be generated
    within ``max_attempts`` (default ``60 × (num_true + num_false)``).
    """
    rng = make_rng(rng)
    n = graph.num_vertices
    if n < 2:
        raise WorkloadError("graph too small to generate queries")
    universe = list(graph.labels.names())
    if not universe:
        raise WorkloadError("graph has no edge labels")
    if bfs_rounds is None:
        # The paper's log|V| rounds assume multi-million-vertex KGs whose
        # diameter exceeds log|V|.  Downscaled graphs have small
        # diameters, so log|V| rounds would explore everything reachable
        # and no true query could survive the unexplored-target rule;
        # log|V|/3 keeps the "not reachable within a few steps" intent.
        bfs_rounds = max(2, int(math.log2(n) / 3))
    if max_attempts is None:
        # Attempts are cheap (one UIS run each); most candidates fail the
        # unexplored-target or tree-size filters, exactly as in the
        # paper's generation ("if |T| < min, we discard Q").
        max_attempts = 500 * max(1, num_true + num_false)

    uis = UIS(graph)
    window_low, window_high = tree_size_window(n)

    # Ground-truth helpers for false-type classification: V(S, G) and
    # the full-label-universe reachability closure machinery.
    full_mask = graph.labels.full_mask()
    satisfying = constraint.satisfying_vertices(graph)
    satisfying_set = set(satisfying)
    reversed_graph = reverse(graph)

    workload = Workload()
    true_bucket_counts = [0, 0, 0]
    false_bucket_counts = [0, 0, 0]
    false_type_counts = {kind: 0 for kind in FALSE_TYPES}

    per_bucket_true = -(-num_true // 3)
    per_bucket_false = -(-num_false // 3)
    per_type_false = -(-num_false // 3)

    while (
        len(workload.true_queries) < num_true
        or len(workload.false_queries) < num_false
    ) and workload.attempts < max_attempts:
        workload.attempts += 1

        bucket = rng.randrange(3)
        low, high = label_bucket_bounds(len(universe), bucket)
        label_count = rng.randint(low, high)
        labels = rng.sample(universe, label_count)
        label_constraint = LabelConstraint(labels)
        mask = label_constraint.mask_for(graph)

        source = rng.randrange(n)
        explored, _frontier = bfs_distance_ring(graph, source, mask, bfs_rounds)
        if len(explored) >= n:
            continue  # everything nearby; no eligible target
        target = rng.randrange(n)
        if target in explored:
            continue

        query = LSCRQuery(
            source=graph.name_of(source),
            target=graph.name_of(target),
            labels=label_constraint,
            constraint=constraint,
        )
        verdict = uis.answer(query)
        minimum = rng.randint(window_low, max(window_low, window_high))
        if verdict.passed_vertices < minimum:
            continue

        if verdict.answer:
            if len(workload.true_queries) >= num_true:
                continue
            if true_bucket_counts[bucket] >= per_bucket_true:
                continue
            true_bucket_counts[bucket] += 1
            workload.true_queries.append(
                WorkloadQuery(
                    query=query,
                    expected=True,
                    tree_size=verdict.passed_vertices,
                    label_bucket=bucket,
                )
            )
        else:
            if len(workload.false_queries) >= num_false:
                continue
            if false_bucket_counts[bucket] >= per_bucket_false:
                continue
            kind = _classify_false(
                graph,
                reversed_graph,
                source,
                target,
                mask,
                full_mask,
                satisfying_set,
            )
            if kind in false_type_counts:
                if false_type_counts[kind] >= per_type_false:
                    continue
                false_type_counts[kind] += 1
            false_bucket_counts[bucket] += 1
            workload.false_queries.append(
                WorkloadQuery(
                    query=query,
                    expected=False,
                    tree_size=verdict.passed_vertices,
                    label_bucket=bucket,
                    false_type=kind,
                )
            )

    if strict and (
        len(workload.true_queries) < num_true
        or len(workload.false_queries) < num_false
    ):
        raise WorkloadError(
            f"could not generate the requested workload within "
            f"{max_attempts} attempts (got {len(workload.true_queries)} true, "
            f"{len(workload.false_queries)} false)"
        )
    return workload


def _classify_false(
    graph: KnowledgeGraph,
    reversed_graph: KnowledgeGraph,
    source: int,
    target: int,
    mask: int,
    full_mask: int,
    satisfying: set[int],
) -> str:
    """Which of the false-query combinations (s ↛_L t / s ↛_S t) holds."""
    label_reachable = lcr_reachable(graph, source, target, mask)
    forward = lcr_closure(graph, source, full_mask)
    backward = lcr_closure(reversed_graph, target, full_mask)
    structure_reachable = any(
        v in forward and v in backward for v in satisfying
    )
    if not label_reachable and structure_reachable:
        return "label_blocked"
    if label_reachable and not structure_reachable:
        return "structure_blocked"
    if not label_reachable and not structure_reachable:
        return "both_blocked"
    return "conjunction_blocked"
