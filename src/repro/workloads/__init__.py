"""Evaluation workload generation (Sections 6.1.1 and 6.2)."""

from repro.workloads.constraints import (
    MagnitudeConstraint,
    random_constraint_with_magnitude,
)
from repro.workloads.generator import (
    FALSE_TYPES,
    Workload,
    WorkloadQuery,
    generate_workload,
    label_bucket_bounds,
    tree_size_window,
)

__all__ = [
    "FALSE_TYPES",
    "MagnitudeConstraint",
    "Workload",
    "WorkloadQuery",
    "generate_workload",
    "label_bucket_bounds",
    "random_constraint_with_magnitude",
    "tree_size_window",
]
