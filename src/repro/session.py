"""High-level session facade for answering many queries on one graph.

The individual algorithm classes are deliberately low-level (one object
per algorithm, explicit index management).  :class:`LSCRSession` is the
convenience layer a downstream application would use: pick an algorithm
by name, build the local index once (for INS), reuse parsed constraints,
and expose ask / answer / explain in one place.

>>> from repro.datasets.toy import figure3_graph
>>> session = LSCRSession(figure3_graph(), algorithm="uis")
>>> session.ask("v0", "v4", ["likes", "follows"],
...             "SELECT ?x WHERE { ?x <friendOf> v3 . v3 <likes> ?y . }")
True
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Iterable

from repro.constraints.label_constraint import LabelConstraint
from repro.constraints.substructure import SubstructureConstraint
from repro.core.base import LSCRAlgorithm
from repro.core.ins import INS
from repro.core.naive import NaiveTwoProcedure
from repro.core.query import LSCRQuery
from repro.core.result import QueryResult
from repro.core.uis import UIS
from repro.core.uis_star import UISStar
from repro.core.witness import WitnessPath, find_witness
from repro.exceptions import ReproError
from repro.graph.labeled_graph import KnowledgeGraph
from repro.index.local_index import LocalIndex, build_local_index
from repro.service.cache import CandidateCache, ConstraintCache
from repro.service.executor import BatchExecutor

__all__ = ["LSCRSession"]

_ALGORITHMS = ("uis", "uis*", "ins", "naive")


class LSCRSession:
    """One graph + one algorithm + cached constraints, ready to query."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        algorithm: str = "ins",
        index: LocalIndex | None = None,
        seed: int | None = None,
        landmark_count: int | None = None,
        constraint_cache: ConstraintCache | None = None,
        candidate_cache: CandidateCache | None = None,
    ) -> None:
        if algorithm not in _ALGORITHMS:
            raise ReproError(
                f"unknown algorithm {algorithm!r}; choose from {_ALGORITHMS}"
            )
        self.graph = graph
        self.algorithm_name = algorithm
        # Seed rule: every source of randomness in the session — landmark
        # selection for the INS index build and candidate shuffling in
        # UIS*/INS — derives from the single ``seed`` argument, with
        # ``None`` meaning the deterministic default 0.  Two sessions
        # constructed with equal arguments therefore build identical
        # indexes and return identical Boolean answers.  The shuffle rng
        # is shared across queries, so traversal-order telemetry
        # (passed_vertices and friends) is reproducible only for serial
        # execution: under answer_many's concurrency, thread scheduling
        # decides which query consumes which rng draws.
        self.seed: int = 0 if seed is None else seed
        rng = random.Random(self.seed)
        self._constraint_cache = (
            constraint_cache if constraint_cache is not None else ConstraintCache()
        )
        #: Shared V(S,G) memo for UIS*/INS (the service passes its own so
        #: every pooled session reuses one computation per constraint).
        self._candidate_cache = candidate_cache
        self._algorithm: LSCRAlgorithm
        if algorithm == "ins":
            if index is None:
                index = build_local_index(graph, k=landmark_count, rng=self.seed)
            self.index: LocalIndex | None = index
            self._algorithm = INS(
                graph, index, rng=rng, candidate_cache=candidate_cache
            )
        else:
            self.index = None
            if algorithm == "uis":
                self._algorithm = UIS(graph)
            elif algorithm == "uis*":
                self._algorithm = UISStar(
                    graph, rng=rng, candidate_cache=candidate_cache
                )
            else:
                self._algorithm = NaiveTwoProcedure(graph)

    def __repr__(self) -> str:
        return f"LSCRSession({self.graph.name!r}, algorithm={self.algorithm_name!r})"

    # ------------------------------------------------------------------

    def _as_constraint(
        self, constraint: str | SubstructureConstraint
    ) -> SubstructureConstraint:
        if isinstance(constraint, SubstructureConstraint):
            return constraint
        return self._constraint_cache.get(constraint)

    def make_query(
        self,
        source: Hashable,
        target: Hashable,
        labels: Iterable[str] | LabelConstraint,
        constraint: str | SubstructureConstraint,
    ) -> LSCRQuery:
        """Build an :class:`LSCRQuery` with constraint-text caching."""
        if not isinstance(labels, LabelConstraint):
            labels = LabelConstraint(labels)
        return LSCRQuery(
            source=source,
            target=target,
            labels=labels,
            constraint=self._as_constraint(constraint),
        )

    # ------------------------------------------------------------------

    def answer(self, query: LSCRQuery) -> QueryResult:
        """Answer a prepared query with full telemetry."""
        return self._algorithm.answer(query)

    def ask(
        self,
        source: Hashable,
        target: Hashable,
        labels: Iterable[str] | LabelConstraint,
        constraint: str | SubstructureConstraint,
    ) -> bool:
        """One-shot Boolean answer."""
        return self.answer(self.make_query(source, target, labels, constraint)).answer

    def answer_many(
        self,
        queries: Iterable[LSCRQuery],
        max_workers: int | None = None,
    ) -> list[QueryResult]:
        """Answer a batch of prepared queries, results in input order.

        Delegates to :class:`~repro.service.executor.BatchExecutor`,
        which fans the batch over a thread pool (the old serial loop is
        deprecated; pass ``max_workers=1`` to force serial execution).
        Boolean answers are independent of execution order — per-query
        state is created inside each ``answer`` call and the graph and
        index are read-only — so this is a drop-in speedup; only
        shuffle-order telemetry can vary run to run (see the seed rule
        in :meth:`__init__`).
        """
        return BatchExecutor(max_workers=max_workers).run(self, queries)

    def explain(self, query: LSCRQuery) -> WitnessPath | None:
        """A witness path for a true query (None when false)."""
        return find_witness(self.graph, query)
