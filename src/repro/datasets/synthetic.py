"""Plain random edge-labeled graphs.

Two uses:

* **Figure 5** — the tree-index scaling experiment sweeps graph density
  ``D = |E|/|V|`` at fixed ``|V|`` and vertex count at fixed density;
  :func:`random_labeled_graph` provides exactly that control;
* **property-based tests** — hypothesis strategies build on these
  generators for the cross-algorithm agreement suites.
"""

from __future__ import annotations

import random

from repro.exceptions import GraphError
from repro.graph.labeled_graph import KnowledgeGraph
from repro.utils.rng import make_rng

__all__ = ["random_labeled_graph", "line_graph", "cycle_graph", "star_graph"]


def random_labeled_graph(
    num_vertices: int,
    density: float,
    num_labels: int,
    rng: int | random.Random | None = 0,
    name: str | None = None,
) -> KnowledgeGraph:
    """Uniform random graph with ``|E| ≈ density · |V|`` distinct edges.

    Labels are drawn uniformly from ``l0 .. l{num_labels-1}``.  Raises
    :class:`GraphError` when the requested density exceeds what a simple
    labeled digraph on ``num_vertices`` can hold.
    """
    if num_vertices <= 0:
        raise GraphError("num_vertices must be positive")
    rng = make_rng(rng)
    graph = KnowledgeGraph(name or f"random-{num_vertices}v-{density}d")
    names = [f"n{i}" for i in range(num_vertices)]
    for vertex in names:
        graph.add_vertex(vertex)
    labels = [f"l{i}" for i in range(num_labels)]
    target_edges = int(round(density * num_vertices))
    capacity = num_vertices * num_vertices * num_labels
    if target_edges > capacity:
        raise GraphError(
            f"density {density} needs {target_edges} edges but only "
            f"{capacity} distinct labeled edges exist"
        )
    attempts = 0
    max_attempts = max(100, target_edges * 50)
    while graph.num_edges < target_edges and attempts < max_attempts:
        attempts += 1
        graph.add_edge(rng.choice(names), rng.choice(labels), rng.choice(names))
    return graph


def line_graph(length: int, label: str = "next") -> KnowledgeGraph:
    """``n0 → n1 → ... → n{length}`` — worst-case depth for searches."""
    graph = KnowledgeGraph(f"line-{length}")
    for i in range(length):
        graph.add_edge(f"n{i}", label, f"n{i + 1}")
    return graph


def cycle_graph(length: int, label: str = "next") -> KnowledgeGraph:
    """A directed cycle of ``length`` vertices."""
    if length < 1:
        raise GraphError("cycle length must be at least 1")
    graph = KnowledgeGraph(f"cycle-{length}")
    for i in range(length):
        graph.add_edge(f"n{i}", label, f"n{(i + 1) % length}")
    return graph


def star_graph(leaves: int, label: str = "spoke", inward: bool = False) -> KnowledgeGraph:
    """A hub with ``leaves`` spokes (outward by default)."""
    graph = KnowledgeGraph(f"star-{leaves}")
    for i in range(leaves):
        if inward:
            graph.add_edge(f"leaf{i}", label, "hub")
        else:
            graph.add_edge("hub", label, f"leaf{i}")
    return graph
