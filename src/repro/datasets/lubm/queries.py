"""The Table 3 substructure constraints S1–S5, verbatim.

Each constant below is the SPARQL text of one constraint exactly as
Table 3 states it (modulo IRI spelling — the paper's ``⟨ub:...⟩`` angle
quotes become ``<ub:...>``); :func:`constraint` parses them into
:class:`~repro.constraints.substructure.SubstructureConstraint` objects.

Expected selectivity on a default-config LUBM-like dataset ``D``
(Section 6.1's characterisation):

========  ==============================================  ===============
name      meaning                                         ``|V(S, D)|``
========  ==============================================  ===============
S1        research interest is 'Research12'               ≈ 1 / department
S2        S1 ∧ associate professor                        ≈ 50% of S1
S3        undergraduate taking a course                   ≫ S1 (all of them)
S4        the 'GraduateStudent4' star pattern             ≈ 1 / department
S5        one specific professor's email + three degrees  exactly 1
========  ==============================================  ===============
"""

from __future__ import annotations

from repro.constraints.substructure import SubstructureConstraint

__all__ = ["S1", "S2", "S3", "S4", "S5", "ALL_CONSTRAINTS", "constraint"]

S1 = "SELECT ?x WHERE { ?x <ub:researchInterest> 'Research12' . }"

S2 = (
    "SELECT ?x WHERE { ?x <ub:researchInterest> 'Research12' . "
    "?x <rdf:type> <ub:AssociateProfessor> . }"
)

S3 = (
    "SELECT ?x WHERE { ?x <rdf:type> <ub:UndergraduateStudent> . "
    "?x <ub:takesCourse> ?y . ?y <rdf:type> <ub:Course> . }"
)

S4 = (
    "SELECT ?x WHERE { ?x <ub:name> 'GraduateStudent4' . "
    "?x <ub:takesCourse> ?y1 . ?x <ub:advisor> ?y2 . ?x <ub:memberOf> ?y3 . "
    "?z1 <ub:takesCourse> ?y1 . ?y2 <ub:teacherOf> ?z2 . "
    "?y2 <ub:worksFor> ?z3 . ?y3 <ub:subOrganizationOf> ?z4 . }"
)

S5 = (
    "SELECT ?x WHERE { "
    "?x <ub:emailAddress> 'FullProfessor0@Department0.University0.edu' . "
    "?x <ub:undergraduateDegreeFrom> ?y1 . ?x <ub:mastersDegreeFrom> ?y2 . "
    "?x <ub:doctoralDegreeFrom> ?y3 . }"
)

ALL_CONSTRAINTS: dict[str, str] = {"S1": S1, "S2": S2, "S3": S3, "S4": S4, "S5": S5}


def constraint(name: str) -> SubstructureConstraint:
    """Parse one of S1–S5 by name ("S1" .. "S5")."""
    return SubstructureConstraint.from_sparql(ALL_CONSTRAINTS[name])
