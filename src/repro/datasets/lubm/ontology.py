"""The ub: ontology subset used by the LUBM-like generator.

LUBM (the Lehigh University Benchmark [4]) models the university domain:
universities contain departments, departments employ faculty and enrol
students, faculty teach courses and author publications.  This module
pins down the class and property vocabulary our generator emits — the
exact subset needed by the Table 3 substructure constraints S1–S5 plus
the surrounding structure that gives the graph its LUBM-like shape.

Names keep LUBM's prefixed spelling (``ub:FullProfessor``); the
:data:`CLASS_HIERARCHY` mirrors the benchmark's ``Professor ⊑ Faculty ⊑
Employee ⊑ Person`` chain so schema-transitive queries behave.
"""

from __future__ import annotations

__all__ = [
    "UNIVERSITY",
    "DEPARTMENT",
    "RESEARCH_GROUP",
    "FULL_PROFESSOR",
    "ASSOCIATE_PROFESSOR",
    "ASSISTANT_PROFESSOR",
    "LECTURER",
    "UNDERGRADUATE_STUDENT",
    "GRADUATE_STUDENT",
    "COURSE",
    "GRADUATE_COURSE",
    "PUBLICATION",
    "CLASS_HIERARCHY",
    "ALL_CLASSES",
    "FACULTY_CLASSES",
    "PROPERTIES",
    "P_WORKS_FOR",
    "P_MEMBER_OF",
    "P_SUB_ORGANIZATION_OF",
    "P_UNDERGRAD_DEGREE_FROM",
    "P_MASTERS_DEGREE_FROM",
    "P_DOCTORAL_DEGREE_FROM",
    "P_TAKES_COURSE",
    "P_TEACHER_OF",
    "P_ADVISOR",
    "P_PUBLICATION_AUTHOR",
    "P_RESEARCH_INTEREST",
    "P_NAME",
    "P_EMAIL",
    "P_HEAD_OF",
]

# ----------------------------------------------------------------------
# classes
# ----------------------------------------------------------------------

UNIVERSITY = "ub:University"
DEPARTMENT = "ub:Department"
RESEARCH_GROUP = "ub:ResearchGroup"
FULL_PROFESSOR = "ub:FullProfessor"
ASSOCIATE_PROFESSOR = "ub:AssociateProfessor"
ASSISTANT_PROFESSOR = "ub:AssistantProfessor"
LECTURER = "ub:Lecturer"
UNDERGRADUATE_STUDENT = "ub:UndergraduateStudent"
GRADUATE_STUDENT = "ub:GraduateStudent"
COURSE = "ub:Course"
GRADUATE_COURSE = "ub:GraduateCourse"
PUBLICATION = "ub:Publication"

#: ``(subclass, superclass)`` pairs (LUBM's hierarchy, trimmed).
CLASS_HIERARCHY: tuple[tuple[str, str], ...] = (
    (FULL_PROFESSOR, "ub:Professor"),
    (ASSOCIATE_PROFESSOR, "ub:Professor"),
    (ASSISTANT_PROFESSOR, "ub:Professor"),
    ("ub:Professor", "ub:Faculty"),
    (LECTURER, "ub:Faculty"),
    ("ub:Faculty", "ub:Employee"),
    ("ub:Employee", "ub:Person"),
    (UNDERGRADUATE_STUDENT, "ub:Student"),
    (GRADUATE_STUDENT, "ub:Student"),
    ("ub:Student", "ub:Person"),
    (GRADUATE_COURSE, COURSE),
    (DEPARTMENT, "ub:Organization"),
    (UNIVERSITY, "ub:Organization"),
    (RESEARCH_GROUP, "ub:Organization"),
)

FACULTY_CLASSES: tuple[str, ...] = (
    FULL_PROFESSOR,
    ASSOCIATE_PROFESSOR,
    ASSISTANT_PROFESSOR,
    LECTURER,
)

ALL_CLASSES: tuple[str, ...] = (
    UNIVERSITY,
    DEPARTMENT,
    RESEARCH_GROUP,
    *FACULTY_CLASSES,
    UNDERGRADUATE_STUDENT,
    GRADUATE_STUDENT,
    COURSE,
    GRADUATE_COURSE,
    PUBLICATION,
)

# ----------------------------------------------------------------------
# properties (with their LUBM domain/range, registered in the schema)
# ----------------------------------------------------------------------

P_WORKS_FOR = "ub:worksFor"
P_MEMBER_OF = "ub:memberOf"
P_SUB_ORGANIZATION_OF = "ub:subOrganizationOf"
P_UNDERGRAD_DEGREE_FROM = "ub:undergraduateDegreeFrom"
P_MASTERS_DEGREE_FROM = "ub:mastersDegreeFrom"
P_DOCTORAL_DEGREE_FROM = "ub:doctoralDegreeFrom"
P_TAKES_COURSE = "ub:takesCourse"
P_TEACHER_OF = "ub:teacherOf"
P_ADVISOR = "ub:advisor"
P_PUBLICATION_AUTHOR = "ub:publicationAuthor"
P_RESEARCH_INTEREST = "ub:researchInterest"
P_NAME = "ub:name"
P_EMAIL = "ub:emailAddress"
P_HEAD_OF = "ub:headOf"

#: ``property → (domain, range)``; ``None`` means unconstrained (e.g.
#: literal-valued properties whose objects we model as plain vertices).
PROPERTIES: dict[str, tuple[str | None, str | None]] = {
    P_WORKS_FOR: ("ub:Faculty", DEPARTMENT),
    P_MEMBER_OF: ("ub:Person", DEPARTMENT),
    P_SUB_ORGANIZATION_OF: ("ub:Organization", "ub:Organization"),
    P_UNDERGRAD_DEGREE_FROM: ("ub:Person", UNIVERSITY),
    P_MASTERS_DEGREE_FROM: ("ub:Person", UNIVERSITY),
    P_DOCTORAL_DEGREE_FROM: ("ub:Person", UNIVERSITY),
    P_TAKES_COURSE: ("ub:Student", COURSE),
    P_TEACHER_OF: ("ub:Faculty", COURSE),
    P_ADVISOR: ("ub:Student", "ub:Professor"),
    P_PUBLICATION_AUTHOR: (PUBLICATION, "ub:Person"),
    P_RESEARCH_INTEREST: ("ub:Faculty", None),
    P_NAME: (None, None),
    P_EMAIL: (None, None),
    P_HEAD_OF: ("ub:Professor", DEPARTMENT),
}
