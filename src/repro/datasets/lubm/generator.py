"""LUBM-like synthetic knowledge-graph generator (Section 6.1's datasets).

The paper generates D0–D5 with the Lehigh University Benchmark's UBA
tool (millions of vertices).  This pure-Python substitute emits the same
university-domain structure at a configurable scale with three fidelity
goals (DESIGN.md §4):

1. **Vocabulary** — exactly the ub: classes/properties the Table 3
   constraints S1–S5 mention, so the constraint SPARQL runs verbatim;
2. **Selectivity ratios** — with the default :class:`LubmConfig`:
   ``|V(S2)| ≈ 0.5·|V(S1)|`` (half the research-interest holders are
   associate professors), ``|V(S4)| ≈ |V(S1)|`` (one ``GraduateStudent4``
   and on average one ``Research12`` holder per department),
   ``|V(S3)| ≫ |V(S1)|`` (every undergraduate), ``|V(S5)| = 1``
   (a single professor's email);
3. **Reachability richness** — LUBM's edge directions alone make most
   vertices sinks; like the RDF materialisations LUBM ships (which
   declare inverse properties), the generator emits ``ub:hasAlumnus``
   (university → person, LUBM's declared inverse of the degree
   properties), closing person → department → university → person cycles
   so that label-constrained paths of meaningful length exist.

Determinism: the same ``(departments, seed, config)`` triple always
yields the identical graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.lubm import ontology as ub
from repro.graph.builder import GraphBuilder
from repro.graph.labeled_graph import KnowledgeGraph
from repro.utils.rng import make_rng

__all__ = ["LubmConfig", "generate_lubm", "generate_dataset", "SCALED_DATASETS"]

#: Scaled-down analogues of the paper's Table 2 datasets.  The paper's
#: D1–D5 grow linearly (3.7M → 18.9M vertices); these grow linearly in
#: departments (≈1.2k → 4.7k vertices).  D0 is the small
#: indexing-comparison dataset.
SCALED_DATASETS: dict[str, int] = {
    "D0": 2,
    "D1": 8,
    "D2": 14,
    "D3": 20,
    "D4": 26,
    "D5": 32,
}


@dataclass(frozen=True)
class LubmConfig:
    """Per-department population (defaults tuned for the S1–S5 ratios)."""

    full_professors: int = 4
    associate_professors: int = 8
    assistant_professors: int = 3
    lecturers: int = 1
    undergraduates: int = 40
    graduates: int = 9
    courses: int = 12
    graduate_courses: int = 6
    publications: int = 15
    research_groups: int = 4
    #: Research-topic pool size.  Equal to the faculty count per
    #: department so that ``|V(S1)| ≈ departments ≈ |V(S4)|``.
    research_topics: int = 16
    departments_per_university: int = 4
    #: Courses each undergraduate takes (inclusive range).
    undergrad_courses: tuple[int, int] = (2, 4)
    #: Graduate courses each graduate takes (inclusive range).
    grad_courses: tuple[int, int] = (1, 3)
    #: Authors per publication (inclusive range).
    authors: tuple[int, int] = (1, 3)
    #: Fraction of all people each university links via ub:hasAlumnus —
    #: the inverse-degree edges that close cross-department cycles.  At
    #: paper scale universities accumulate thousands of alumni; keeping
    #: the count proportional preserves that connectivity when scaled
    #: down (label-constrained closures must be able to grow large, or
    #: every Section 6.1.1 query collapses to a trivial false).
    alumni_fraction: float = 0.15

    @property
    def faculty(self) -> int:
        """Faculty per department."""
        return (
            self.full_professors
            + self.associate_professors
            + self.assistant_professors
            + self.lecturers
        )


def generate_dataset(
    name: str,
    rng: int | random.Random | None = 0,
    config: LubmConfig | None = None,
) -> KnowledgeGraph:
    """Generate one of the scaled D0–D5 datasets by name."""
    departments = SCALED_DATASETS[name]
    return generate_lubm(departments, rng=rng, config=config, name=name)


def generate_lubm(
    departments: int,
    rng: int | random.Random | None = 0,
    config: LubmConfig | None = None,
    name: str | None = None,
) -> KnowledgeGraph:
    """Generate a LUBM-like KG with the given number of departments."""
    cfg = config or LubmConfig()
    rng = make_rng(rng)
    builder = GraphBuilder(name or f"lubm-{departments}d")
    _declare_ontology(builder)

    universities = max(1, -(-departments // cfg.departments_per_university))
    university_names = [f"University{u}" for u in range(universities)]
    for uni in university_names:
        builder.typed(uni, ub.UNIVERSITY)

    all_people: list[str] = []
    department_names: list[str] = []
    for dept_index in range(departments):
        u = dept_index // cfg.departments_per_university
        d = dept_index % cfg.departments_per_university
        dept = f"Department{d}.University{u}"
        department_names.append(dept)
        people = _generate_department(
            builder, rng, cfg, dept, university_names[u], university_names, d, u
        )
        all_people.extend(people)

    # Universities link back to people (ub:hasAlumnus — LUBM's declared
    # inverse of the degree properties), closing cross-department cycles.
    alumni_count = max(3, int(cfg.alumni_fraction * len(all_people)))
    for uni in university_names:
        for person in rng.sample(all_people, min(alumni_count, len(all_people))):
            builder.edge(uni, "ub:hasAlumnus", person)

    return builder.build()


def _declare_ontology(builder: GraphBuilder) -> None:
    for cls in ub.ALL_CLASSES:
        builder.declare_class(cls)
    for subclass, superclass in ub.CLASS_HIERARCHY:
        builder.subclass(subclass, superclass)
    for prop, (domain, range_) in ub.PROPERTIES.items():
        if domain is not None:
            builder.domain(prop, domain)
        if range_ is not None:
            builder.range(prop, range_)


def _generate_department(
    builder: GraphBuilder,
    rng: random.Random,
    cfg: LubmConfig,
    dept: str,
    university: str,
    all_universities: list[str],
    d: int,
    u: int,
) -> list[str]:
    """Emit one department; returns the people created (for alumni links)."""
    builder.typed(dept, ub.DEPARTMENT)
    builder.edge(dept, ub.P_SUB_ORGANIZATION_OF, university)

    for i in range(cfg.research_groups):
        group = f"{dept}/ResearchGroup{i}"
        builder.typed(group, ub.RESEARCH_GROUP)
        builder.edge(group, ub.P_SUB_ORGANIZATION_OF, dept)

    courses = [f"{dept}/Course{i}" for i in range(cfg.courses)]
    grad_courses = [f"{dept}/GraduateCourse{i}" for i in range(cfg.graduate_courses)]
    for course in courses:
        builder.typed(course, ub.COURSE)
    for course in grad_courses:
        builder.typed(course, ub.GRADUATE_COURSE)
        # GraduateCourse ⊑ Course is also materialised as an rdf:type
        # edge so the S3/S4 patterns that ask for ub:Course match.
        builder.typed(course, ub.COURSE)

    faculty: list[str] = []
    faculty_plan = (
        (ub.FULL_PROFESSOR, "FullProfessor", cfg.full_professors),
        (ub.ASSOCIATE_PROFESSOR, "AssociateProfessor", cfg.associate_professors),
        (ub.ASSISTANT_PROFESSOR, "AssistantProfessor", cfg.assistant_professors),
        (ub.LECTURER, "Lecturer", cfg.lecturers),
    )
    for class_name, stem, count in faculty_plan:
        for i in range(count):
            person = f"{dept}/{stem}{i}"
            faculty.append(person)
            builder.typed(person, class_name)
            builder.edge(person, ub.P_WORKS_FOR, dept)
            builder.edge(person, ub.P_NAME, f"{stem}{i}")
            builder.edge(
                person, ub.P_EMAIL, f"{stem}{i}@Department{d}.University{u}.edu"
            )
            for degree in (
                ub.P_UNDERGRAD_DEGREE_FROM,
                ub.P_MASTERS_DEGREE_FROM,
                ub.P_DOCTORAL_DEGREE_FROM,
            ):
                builder.edge(person, degree, rng.choice(all_universities))
            topic = f"Research{rng.randrange(cfg.research_topics)}"
            builder.edge(person, ub.P_RESEARCH_INTEREST, topic)
            teachable = courses + grad_courses
            for course in rng.sample(teachable, min(2, len(teachable))):
                builder.edge(person, ub.P_TEACHER_OF, course)
    builder.edge(faculty[0], ub.P_HEAD_OF, dept)
    professors = [p for p in faculty if "Lecturer" not in p]

    undergrads: list[str] = []
    for i in range(cfg.undergraduates):
        student = f"{dept}/UndergraduateStudent{i}"
        undergrads.append(student)
        builder.typed(student, ub.UNDERGRADUATE_STUDENT)
        builder.edge(student, ub.P_MEMBER_OF, dept)
        builder.edge(student, ub.P_NAME, f"UndergraduateStudent{i}")
        count = rng.randint(*cfg.undergrad_courses)
        for course in rng.sample(courses, min(count, len(courses))):
            builder.edge(student, ub.P_TAKES_COURSE, course)

    grads: list[str] = []
    for i in range(cfg.graduates):
        student = f"{dept}/GraduateStudent{i}"
        grads.append(student)
        builder.typed(student, ub.GRADUATE_STUDENT)
        builder.edge(student, ub.P_MEMBER_OF, dept)
        builder.edge(student, ub.P_NAME, f"GraduateStudent{i}")
        builder.edge(student, ub.P_ADVISOR, rng.choice(professors))
        builder.edge(student, ub.P_UNDERGRAD_DEGREE_FROM, rng.choice(all_universities))
        count = rng.randint(*cfg.grad_courses)
        for course in rng.sample(grad_courses, min(count, len(grad_courses))):
            builder.edge(student, ub.P_TAKES_COURSE, course)

    authors_pool = faculty + grads
    for i in range(cfg.publications):
        publication = f"{dept}/Publication{i}"
        builder.typed(publication, ub.PUBLICATION)
        count = rng.randint(*cfg.authors)
        for author in rng.sample(authors_pool, min(count, len(authors_pool))):
            builder.edge(publication, ub.P_PUBLICATION_AUTHOR, author)

    return faculty + undergrads + grads
