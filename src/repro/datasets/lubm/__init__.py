"""LUBM-like university-domain dataset generator and the S1–S5 queries."""

from repro.datasets.lubm.generator import (
    SCALED_DATASETS,
    LubmConfig,
    generate_dataset,
    generate_lubm,
)
from repro.datasets.lubm.queries import ALL_CONSTRAINTS, S1, S2, S3, S4, S5, constraint

__all__ = [
    "ALL_CONSTRAINTS",
    "LubmConfig",
    "S1",
    "S2",
    "S3",
    "S4",
    "S5",
    "SCALED_DATASETS",
    "constraint",
    "generate_dataset",
    "generate_lubm",
]
