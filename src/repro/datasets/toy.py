"""The paper's worked examples as ready-made fixtures.

* :func:`figure3_graph` — the running example ``G0`` of Figure 3.  The
  figure itself is partly garbled in the source; the edge set here is
  reconstructed from the CMS values the paper states
  (``M(v0,v3) = {{friendOf}}``, ``M(v0,v4) = {{friendOf,likes},
  {advisorOf,follows}, {likes,follows}}``), the Section 3 walk
  ``v3 → v4 → v1 → v3 → v4``, and the claims ``v0 ⇝_{L,S0} v4`` /
  ``v0 ↛_{L,S0} v3`` for ``L = {likes, follows}`` — all of which hold on
  this graph (and are pinned by tests).
* :func:`figure3_constraint` — ``S0 = (?x, {v3}, {},
  {(?x, friendOf, v3), (v3, likes, ?y)})``.
* :func:`figure1_financial_graph` — a small financial KG in the shape of
  the introduction's criminal-detection scenario: account-transfer edges
  labeled with month timestamps plus social-relationship edges, so the
  "indirect transaction from C to P in April 2019 through a middleman
  married to Amy" query is expressible.
"""

from __future__ import annotations

from repro.constraints.substructure import SubstructureConstraint
from repro.graph.builder import GraphBuilder
from repro.graph.labeled_graph import KnowledgeGraph

__all__ = [
    "figure3_graph",
    "figure3_constraint",
    "figure1_financial_graph",
    "FIGURE3_EDGES",
]

#: The reconstructed edge set of Figure 3(a).
FIGURE3_EDGES: tuple[tuple[str, str, str], ...] = (
    ("v0", "friendOf", "v1"),
    ("v1", "friendOf", "v3"),
    ("v0", "advisorOf", "v2"),
    ("v0", "likes", "v2"),
    ("v2", "follows", "v4"),
    ("v2", "friendOf", "v3"),
    ("v3", "likes", "v4"),
    ("v4", "hates", "v1"),
)


def figure3_graph() -> KnowledgeGraph:
    """The running-example graph ``G0`` (Figure 3(a))."""
    builder = GraphBuilder("G0")
    builder.edges(FIGURE3_EDGES)
    return builder.build()


def figure3_constraint() -> SubstructureConstraint:
    """``S0`` of Figure 3(b): ``?x friendOf v3 . v3 likes ?y .``"""
    return SubstructureConstraint.from_sparql(
        "SELECT ?x WHERE { ?x <friendOf> v3 . v3 <likes> ?y . }"
    )


def figure1_financial_graph() -> KnowledgeGraph:
    """A financial KG for the Figure 1 scenario.

    Vertices are people; transfer edges are labeled by occurrence month
    (``2019-03`` .. ``2019-05``), social edges by relationship.  The
    suspicious chain is ``C → m1 → m2 → P`` entirely inside April 2019,
    with middleman ``m2`` married to ``Amy``; decoy paths either leave
    April or avoid married middlemen.
    """
    builder = GraphBuilder("figure1")
    builder.declare_class("Person")
    for person in ("C", "P", "Amy", "m1", "m2", "m3", "m4", "broker"):
        builder.typed(person, "Person")
    transfers = [
        # the criminal chain (all April 2019)
        ("C", "2019-04", "m1"),
        ("m1", "2019-04", "m2"),
        ("m2", "2019-04", "P"),
        # decoy: reaches P but the middle hop is in March
        ("C", "2019-04", "m3"),
        ("m3", "2019-03", "P"),
        # decoy: April path whose middlemen are unmarried
        ("C", "2019-04", "m4"),
        ("m4", "2019-04", "broker"),
        ("broker", "2019-05", "P"),
    ]
    builder.edges(transfers)
    social = [
        ("m2", "marriedTo", "Amy"),
        ("Amy", "marriedTo", "m2"),
        ("m3", "friendOf", "Amy"),
        ("broker", "parentOf", "m4"),
    ]
    builder.edges(social)
    return builder.build()
