"""Dataset generators: LUBM-like, YAGO-like, random graphs, paper toys."""

from repro.datasets.lubm import (
    SCALED_DATASETS,
    LubmConfig,
    generate_dataset,
    generate_lubm,
)
from repro.datasets.synthetic import (
    cycle_graph,
    line_graph,
    random_labeled_graph,
    star_graph,
)
from repro.datasets.toy import (
    figure1_financial_graph,
    figure3_constraint,
    figure3_graph,
)
from repro.datasets.yago import YagoConfig, generate_yago_like

__all__ = [
    "LubmConfig",
    "SCALED_DATASETS",
    "YagoConfig",
    "cycle_graph",
    "figure1_financial_graph",
    "figure3_constraint",
    "figure3_graph",
    "generate_dataset",
    "generate_lubm",
    "generate_yago_like",
    "line_graph",
    "random_labeled_graph",
    "star_graph",
]
