"""YAGO-like scale-free knowledge-graph generator (Section 6.2's dataset).

The paper's real-KG experiments run on YAGO (≈4M vertices / 13M edges,
downloaded from the MPI archive).  Without network access we substitute
a synthetic KG that preserves the properties Figure 15 actually
exercises (DESIGN.md §4):

* **scale-free topology** — YAGO, like all RDFS-structured KGs, is a
  scale-free network (Section 2); edges here attach preferentially to
  high-in-degree entities, producing the heavy-tailed degree profile
  (verified by a test on the degree Gini coefficient);
* **an RDFS class layer** — entities are typed against a class taxonomy
  (a subclass tree), because both INS's landmark selection and the
  Section 6.2 random-constraint generator are schema-driven;
* **a YAGO-flavoured relation vocabulary** — a few dozen labels with a
  Zipf-like frequency profile, so label constraints of size
  ``0.2·|𝕃| .. 0.8·|𝕃|`` behave as they do on the real data.

Scale is configurable; Figure 15's harness uses a few thousand entities
(the paper's 4M is out of reach for pure Python index construction —
the repro=3 calibration note).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graph.builder import GraphBuilder
from repro.graph.labeled_graph import KnowledgeGraph
from repro.utils.rng import make_rng

__all__ = ["YagoConfig", "generate_yago_like", "YAGO_RELATIONS", "YAGO_CLASSES"]

#: Relation labels, most-frequent first (Zipf weights are rank-based).
YAGO_RELATIONS: tuple[str, ...] = (
    "yago:isLocatedIn",
    "yago:linksTo",
    "yago:isCitizenOf",
    "yago:wasBornIn",
    "yago:livesIn",
    "yago:actedIn",
    "yago:playsFor",
    "yago:worksAt",
    "yago:created",
    "yago:hasChild",
    "yago:isMarriedTo",
    "yago:influences",
    "yago:graduatedFrom",
    "yago:owns",
    "yago:directed",
    "yago:hasWonPrize",
    "yago:participatedIn",
    "yago:diedIn",
    "yago:isLeaderOf",
    "yago:wroteMusicFor",
)

#: ``(class, parent-or-None)`` — a small taxonomy tree.
YAGO_CLASSES: tuple[tuple[str, str | None], ...] = (
    ("yago:Entity", None),
    ("yago:Person", "yago:Entity"),
    ("yago:Artist", "yago:Person"),
    ("yago:Scientist", "yago:Person"),
    ("yago:Politician", "yago:Person"),
    ("yago:Athlete", "yago:Person"),
    ("yago:Place", "yago:Entity"),
    ("yago:City", "yago:Place"),
    ("yago:Country", "yago:Place"),
    ("yago:Organization", "yago:Entity"),
    ("yago:Company", "yago:Organization"),
    ("yago:University", "yago:Organization"),
    ("yago:Work", "yago:Entity"),
    ("yago:Movie", "yago:Work"),
    ("yago:Song", "yago:Work"),
)


@dataclass(frozen=True)
class YagoConfig:
    """Knobs of the YAGO-like generator."""

    num_entities: int = 2000
    #: Target edge count as a multiple of entities (YAGO: ≈ 3.2).
    density: float = 3.2
    #: Preferential-attachment strength: probability that an edge target
    #: is drawn from the degree-weighted pool instead of uniformly.
    attachment: float = 0.75
    #: Zipf exponent for relation-label frequencies.
    zipf_exponent: float = 1.1
    #: Leaf classes entities are typed with (weighted by rank).
    classes: tuple[tuple[str, str | None], ...] = YAGO_CLASSES
    relations: tuple[str, ...] = YAGO_RELATIONS


def generate_yago_like(
    config: YagoConfig | None = None,
    rng: int | random.Random | None = 0,
    name: str = "yago-like",
) -> KnowledgeGraph:
    """Generate a scale-free KG with an RDFS class layer."""
    cfg = config or YagoConfig()
    rng = make_rng(rng)
    builder = GraphBuilder(name)

    leaf_classes: list[str] = []
    for class_name, parent in cfg.classes:
        builder.declare_class(class_name)
        if parent is not None:
            builder.subclass(class_name, parent)
    children = {parent for _, parent in cfg.classes if parent is not None}
    leaf_classes = [c for c, _ in cfg.classes if c not in children]

    # Entities, typed by a rank-weighted leaf class.
    entities = [f"yago:e{i}" for i in range(cfg.num_entities)]
    class_weights = [1.0 / (rank + 1) for rank in range(len(leaf_classes))]
    for entity in entities:
        cls = rng.choices(leaf_classes, weights=class_weights)[0]
        builder.typed(entity, cls)

    # Relation edges with preferential attachment on the target side.
    relation_weights = [
        1.0 / (rank + 1) ** cfg.zipf_exponent for rank in range(len(cfg.relations))
    ]
    target_edges = int(cfg.density * cfg.num_entities)
    # The degree-weighted pool: every time a vertex gains an in-edge it
    # is appended, so sampling from the pool is sampling ∝ in-degree.
    pool: list[str] = list(entities)
    emitted = 0
    attempts = 0
    max_attempts = target_edges * 20
    while emitted < target_edges and attempts < max_attempts:
        attempts += 1
        source = rng.choice(entities)
        if rng.random() < cfg.attachment:
            target = rng.choice(pool)
        else:
            target = rng.choice(entities)
        if target == source:
            continue
        relation = rng.choices(cfg.relations, weights=relation_weights)[0]
        if builder.graph.has_edge_named(source, relation, target):
            continue
        builder.edge(source, relation, target)
        pool.append(target)
        emitted += 1

    return builder.build()
