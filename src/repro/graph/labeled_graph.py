"""The core edge-labeled directed graph (Definition 2.1).

A knowledge graph ``G = (V, E, 𝕃, LS)`` is a set of vertices ``V``, a set
of labeled directed edges ``E ⊆ V × 𝕃 × V``, the label universe ``𝕃`` and
an RDFS schema ``LS``.  This module implements the ``(V, E, 𝕃)`` part;
the schema lives in :mod:`repro.graph.schema` and is attached via the
``schema`` attribute so that ``G`` remains a single object as in the
paper.

Representation choices (all driven by the hot loops of UIS/UIS*/INS and
the SPARQL evaluator):

* vertices and labels are interned to dense ints; every algorithm works
  on ids and converts to names only at the API boundary;
* adjacency is a per-vertex ``dict[label_id, list[vertex_id]]`` in both
  directions, so label-constrained expansion (the single most executed
  operation in the paper's algorithms) never touches edges with labels
  outside the constraint mask;
* ``E`` is a *set* (the paper's definition): duplicate ``(s, l, t)``
  insertions are ignored, backed by an O(1) membership set that also
  serves ``has_edge`` for the SPARQL evaluator;
* per-label edge lists support the evaluator's selectivity ordering and
  unbound-subject patterns.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.exceptions import VertexNotFoundError
from repro.graph.labels import LabelUniverse, iter_mask_bits

__all__ = ["KnowledgeGraph", "Edge"]

#: An edge as exposed by iteration APIs: ``(source_id, label_id, target_id)``.
Edge = tuple[int, int, int]


class KnowledgeGraph:
    """Edge-labeled directed graph with interned vertices and labels.

    Vertex names may be any hashable value (strings in practice).  All
    id-returning methods hand out dense ints starting at zero, so
    algorithm state can live in flat lists indexed by vertex id.

    >>> g = KnowledgeGraph()
    >>> g.add_edge("v0", "friendOf", "v1")
    True
    >>> g.add_edge("v0", "friendOf", "v1")   # E is a set (Definition 2.1)
    False
    >>> g.num_vertices, g.num_edges
    (2, 1)
    """

    __slots__ = (
        "name",
        "schema",
        "_labels",
        "_vertex_ids",
        "_vertex_names",
        "_out",
        "_in",
        "_out_degree",
        "_in_degree",
        "_edge_set",
        "_by_label",
        "_label_edge_count",
        "_frozen",
        "_mutations",
    )

    def __init__(self, name: str = "kg", schema: object | None = None) -> None:
        self.name = name
        #: RDFS schema (``LS`` of Definition 2.1); attached by builders.
        self.schema = schema
        self._labels = LabelUniverse()
        self._vertex_ids: dict[Hashable, int] = {}
        self._vertex_names: list[Hashable] = []
        self._out: list[dict[int, list[int]]] = []
        self._in: list[dict[int, list[int]]] = []
        self._out_degree: list[int] = []
        self._in_degree: list[int] = []
        self._edge_set: set[Edge] = set()
        self._by_label: dict[int, list[tuple[int, int]]] = {}
        self._label_edge_count: dict[int, int] = {}
        #: Cached CSR snapshot, keyed by the mutation count it was taken
        #: at.  Size tuples are NOT a safe key: a removal followed by an
        #: insertion leaves every size unchanged while the adjacency
        #: differs, and a stale snapshot would silently answer for the
        #: old graph.
        self._frozen: tuple[int, "KnowledgeGraph"] | None = None
        #: Monotonic structural-mutation counter; bumped by every
        #: effective vertex intern, edge insertion and edge removal.
        self._mutations = 0

    # ------------------------------------------------------------------
    # sizes and dunder conveniences
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """``|V|``."""
        return len(self._vertex_names)

    @property
    def num_edges(self) -> int:
        """``|E|``."""
        return len(self._edge_set)

    @property
    def num_labels(self) -> int:
        """``|𝕃|``."""
        return len(self._labels)

    @property
    def labels(self) -> LabelUniverse:
        """The label universe ``𝕃`` (shared, mutable)."""
        return self._labels

    def __len__(self) -> int:
        return self.num_vertices

    def __contains__(self, vertex_name: Hashable) -> bool:
        return vertex_name in self._vertex_ids

    def __repr__(self) -> str:
        return (
            f"KnowledgeGraph({self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, |L|={self.num_labels})"
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_vertex(self, name: Hashable) -> int:
        """Intern ``name`` and return its vertex id (idempotent)."""
        existing = self._vertex_ids.get(name)
        if existing is not None:
            return existing
        vid = len(self._vertex_names)
        self._vertex_ids[name] = vid
        self._vertex_names.append(name)
        self._out.append({})
        self._in.append({})
        self._out_degree.append(0)
        self._in_degree.append(0)
        self._mutations += 1
        return vid

    def add_edge(self, source: Hashable, label: str, target: Hashable) -> bool:
        """Add edge ``(source, label, target)`` by *name*; False if present."""
        s = self.add_vertex(source)
        t = self.add_vertex(target)
        lid = self._labels.intern(label)
        return self.add_edge_ids(s, lid, t)

    def add_edge_ids(self, s: int, label_id: int, t: int) -> bool:
        """Add an edge by pre-interned ids; returns False for duplicates."""
        edge = (s, label_id, t)
        if edge in self._edge_set:
            return False
        self._edge_set.add(edge)
        self._out[s].setdefault(label_id, []).append(t)
        self._in[t].setdefault(label_id, []).append(s)
        self._out_degree[s] += 1
        self._in_degree[t] += 1
        self._by_label.setdefault(label_id, []).append((s, t))
        self._label_edge_count[label_id] = self._label_edge_count.get(label_id, 0) + 1
        self._mutations += 1
        return True

    def remove_edge(self, source: Hashable, label: str, target: Hashable) -> bool:
        """Remove edge ``(source, label, target)`` by *name*; False if absent.

        Unknown vertex names or labels simply yield False — removal of a
        fact that was never asserted is a no-op, mirroring how
        :meth:`add_edge` treats duplicates.
        """
        if label not in self._labels:
            return False
        s = self._vertex_ids.get(source)
        t = self._vertex_ids.get(target)
        if s is None or t is None:
            return False
        return self.remove_edge_ids(s, self._labels.id_of(label), t)

    def remove_edge_ids(self, s: int, label_id: int, t: int) -> bool:
        """Remove an edge by pre-interned ids; returns False when absent.

        Vertices are never removed (ids must stay dense and stable for
        every id-keyed structure built against the graph); only the edge
        and its derived bookkeeping go.
        """
        edge = (s, label_id, t)
        if edge not in self._edge_set:
            return False
        self._edge_set.discard(edge)
        targets = self._out[s][label_id]
        targets.remove(t)
        if not targets:
            del self._out[s][label_id]
        sources = self._in[t][label_id]
        sources.remove(s)
        if not sources:
            del self._in[t][label_id]
        self._out_degree[s] -= 1
        self._in_degree[t] -= 1
        pairs = self._by_label[label_id]
        pairs.remove((s, t))
        if not pairs:
            del self._by_label[label_id]
        remaining = self._label_edge_count[label_id] - 1
        if remaining:
            self._label_edge_count[label_id] = remaining
        else:
            del self._label_edge_count[label_id]
        self._mutations += 1
        return True

    # ------------------------------------------------------------------
    # id <-> name
    # ------------------------------------------------------------------

    def vid(self, name: Hashable) -> int:
        """Vertex id of ``name``; raises :class:`VertexNotFoundError`."""
        try:
            return self._vertex_ids[name]
        except KeyError:
            raise VertexNotFoundError(name) from None

    def name_of(self, vid: int) -> Hashable:
        """Vertex name of ``vid``; raises :class:`VertexNotFoundError`."""
        if 0 <= vid < len(self._vertex_names):
            return self._vertex_names[vid]
        raise VertexNotFoundError(vid)

    def has_vertex(self, name: Hashable) -> bool:
        """True if a vertex with this name exists."""
        return name in self._vertex_ids

    def label_id(self, label: str) -> int:
        """Label id of ``label``; raises :class:`LabelNotFoundError`."""
        return self._labels.id_of(label)

    def label_name(self, label_id: int) -> str:
        """Label name of ``label_id``; raises :class:`LabelNotFoundError`."""
        return self._labels.name_of(label_id)

    def label_mask(self, labels: Iterable[str]) -> int:
        """Bitmask for a collection of label names (the constraint ``L``)."""
        return self._labels.mask_of(labels)

    # ------------------------------------------------------------------
    # iteration (ids)
    # ------------------------------------------------------------------

    def vertices(self) -> range:
        """All vertex ids."""
        return range(self.num_vertices)

    def vertex_names(self) -> Iterator[Hashable]:
        """All vertex names in id order."""
        return iter(self._vertex_names)

    def edges(self) -> Iterator[Edge]:
        """All edges as ``(source_id, label_id, target_id)``."""
        for s, adjacency in enumerate(self._out):
            for label_id, targets in adjacency.items():
                for t in targets:
                    yield (s, label_id, t)

    def edges_named(self) -> Iterator[tuple[Hashable, str, Hashable]]:
        """All edges as ``(source_name, label_name, target_name)``."""
        names = self._vertex_names
        label_name = self._labels.name_of
        for s, label_id, t in self.edges():
            yield (names[s], label_name(label_id), names[t])

    def out_edges(self, vid: int) -> Iterator[tuple[int, int]]:
        """Outgoing ``(label_id, target_id)`` pairs of ``vid``."""
        for label_id, targets in self._out[vid].items():
            for t in targets:
                yield (label_id, t)

    def in_edges(self, vid: int) -> Iterator[tuple[int, int]]:
        """Incoming ``(label_id, source_id)`` pairs of ``vid``."""
        for label_id, sources in self._in[vid].items():
            for s in sources:
                yield (label_id, s)

    def out_by_label(self, vid: int, label_id: int) -> list[int]:
        """Targets of ``vid``'s out-edges labeled ``label_id`` (maybe empty)."""
        return self._out[vid].get(label_id, [])

    def in_by_label(self, vid: int, label_id: int) -> list[int]:
        """Sources of ``vid``'s in-edges labeled ``label_id`` (maybe empty)."""
        return self._in[vid].get(label_id, [])

    def out_masked(self, vid: int, mask: int) -> Iterator[tuple[int, int]]:
        """Outgoing ``(label_id, target_id)`` with the label inside ``mask``.

        This is the expansion step of every search algorithm in the paper
        ("for each edge e = (u, l, v), l ∈ L"): edges whose label is
        outside the constraint are never touched.
        """
        for label_id, targets in self._out[vid].items():
            if mask >> label_id & 1:
                for t in targets:
                    yield (label_id, t)

    def in_masked(self, vid: int, mask: int) -> Iterator[tuple[int, int]]:
        """Incoming ``(label_id, source_id)`` with the label inside ``mask``."""
        for label_id, sources in self._in[vid].items():
            if mask >> label_id & 1:
                for s in sources:
                    yield (label_id, s)

    def out_targets_masked(self, vid: int, mask: int) -> list[int]:
        """Targets of ``vid``'s out-edges whose label is inside ``mask``.

        The label-dropping form of :meth:`out_masked` — what the search
        algorithms actually consume (none of UIS/UIS*/INS/naive uses the
        label during expansion).  Returning a flat list instead of a
        generator of tuples saves one tuple allocation and one generator
        resumption per edge; :class:`~repro.graph.csr.FrozenGraph`
        overrides this with contiguous CSR slices and an O(1) whole-vertex
        mask pre-test.
        """
        result: list[int] = []
        for label_id, targets in self._out[vid].items():
            if mask >> label_id & 1:
                result.extend(targets)
        return result

    def in_targets_masked(self, vid: int, mask: int) -> list[int]:
        """Sources of ``vid``'s in-edges whose label is inside ``mask``."""
        result: list[int] = []
        for label_id, sources in self._in[vid].items():
            if mask >> label_id & 1:
                result.extend(sources)
        return result

    def out_labels(self, vid: int) -> Iterator[int]:
        """Distinct label ids on ``vid``'s out-edges."""
        return iter(self._out[vid].keys())

    def out_label_mask(self, vid: int) -> int:
        """Bitmask of distinct labels on ``vid``'s out-edges."""
        mask = 0
        for label_id in self._out[vid]:
            mask |= 1 << label_id
        return mask

    def in_label_mask(self, vid: int) -> int:
        """Bitmask of distinct labels on ``vid``'s in-edges."""
        mask = 0
        for label_id in self._in[vid]:
            mask |= 1 << label_id
        return mask

    def has_out_label(self, vid: int, label_id: int) -> bool:
        """True iff ``vid`` has at least one out-edge labeled ``label_id``."""
        return label_id in self._out[vid]

    def has_in_label(self, vid: int, label_id: int) -> bool:
        """True iff ``vid`` has at least one in-edge labeled ``label_id``."""
        return label_id in self._in[vid]

    def edges_with_label(self, label_id: int) -> list[tuple[int, int]]:
        """All ``(source_id, target_id)`` pairs carrying ``label_id``."""
        return self._by_label.get(label_id, [])

    # ------------------------------------------------------------------
    # membership / degrees / frequencies
    # ------------------------------------------------------------------

    def has_edge(self, s: int, label_id: int, t: int) -> bool:
        """O(1) edge-set membership by ids."""
        return (s, label_id, t) in self._edge_set

    def has_edge_named(self, source: Hashable, label: str, target: Hashable) -> bool:
        """Edge membership by names; unknown names/labels simply yield False."""
        if label not in self._labels:
            return False
        s = self._vertex_ids.get(source)
        t = self._vertex_ids.get(target)
        if s is None or t is None:
            return False
        return self.has_edge(s, self._labels.id_of(label), t)

    def out_degree(self, vid: int) -> int:
        """Number of outgoing edges of ``vid``."""
        return self._out_degree[vid]

    def in_degree(self, vid: int) -> int:
        """Number of incoming edges of ``vid``."""
        return self._in_degree[vid]

    def degree(self, vid: int) -> int:
        """Total degree (in + out) of ``vid``."""
        return self._out_degree[vid] + self._in_degree[vid]

    def label_frequency(self, label_id: int) -> int:
        """Number of edges carrying ``label_id`` (evaluator selectivity)."""
        return self._label_edge_count.get(label_id, 0)

    def density(self) -> float:
        """``|E| / |V|`` — the paper's ``D`` (Figure 5)."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------

    def labels_between(self, s: int, t: int) -> int:
        """Mask of labels on direct edges from ``s`` to ``t``.

        Answered from ``_edge_set`` with one O(1) membership probe per
        distinct label on ``s`` — the per-label ``t in targets`` list
        scans this used to do were quadratic on high-degree vertices.
        """
        mask = 0
        edge_set = self._edge_set
        for label_id in self._out[s]:
            if (s, label_id, t) in edge_set:
                mask |= 1 << label_id
        return mask

    def mask_labels(self, mask: int) -> tuple[str, ...]:
        """Decode a label mask to names (ascending id order)."""
        return tuple(self._labels.name_of(bit) for bit in iter_mask_bits(mask))

    # ------------------------------------------------------------------
    # copying / identity
    # ------------------------------------------------------------------

    @property
    def mutation_count(self) -> int:
        """Monotonic count of effective structural mutations.

        Bumped by every vertex intern, edge insertion and edge removal
        that actually changed the graph.  Two reads returning the same
        value guarantee no structural change happened between them —
        the staleness key :meth:`freeze` caches its snapshot under.
        """
        return self._mutations

    def copy(self, name: str | None = None) -> "KnowledgeGraph":
        """An independent, mutable deep copy sharing ids with this graph.

        Vertex and label ids are preserved (the copy is built from the
        same interning order), so indexes and cached id-keyed structures
        built against this graph describe the copy too — until the copy
        is mutated, which is the point: this is the copy-on-write step
        of an epoch swap.  The schema object is shared (read-only by
        convention); everything structural is copied.
        """
        clone = KnowledgeGraph.__new__(KnowledgeGraph)
        clone.name = self.name if name is None else name
        clone.schema = self.schema
        clone._labels = self._labels.copy()
        clone._vertex_ids = dict(self._vertex_ids)
        clone._vertex_names = list(self._vertex_names)
        clone._out = [
            {label_id: list(targets) for label_id, targets in adjacency.items()}
            for adjacency in self._out
        ]
        clone._in = [
            {label_id: list(sources) for label_id, sources in adjacency.items()}
            for adjacency in self._in
        ]
        clone._out_degree = list(self._out_degree)
        clone._in_degree = list(self._in_degree)
        clone._edge_set = set(self._edge_set)
        clone._by_label = {
            label_id: list(pairs) for label_id, pairs in self._by_label.items()
        }
        clone._label_edge_count = dict(self._label_edge_count)
        clone._frozen = None
        clone._mutations = self._mutations
        return clone

    def content_fingerprint(self) -> str:
        """A cheap, deterministic digest of the graph's exact content.

        Hashes the sizes, the full label universe (names in id order)
        and an order-insensitive accumulator over *every* edge id
        triple: each ``(s, label, t)`` is mixed into 64 bits and the
        mixes are summed, so the digest is independent of iteration and
        insertion order but changes for any single edge moved — two
        same-size graphs collide only with ~2⁻⁶⁴ accidental hash
        probability, never systematically.  O(|V| + |E| + |L|) with a
        small constant; callers (the epoch swap, snapshot identity)
        already pay that order to copy or freeze the graph.
        """
        import hashlib  # deferred: only identity checks pay for it

        mask64 = (1 << 64) - 1
        accumulator = 0
        for s, adjacency in enumerate(self._out):
            for label_id, targets in adjacency.items():
                for t in targets:
                    # splitmix64-style finalizer over a packed triple:
                    # cheap, stable across processes (no built-in hash()).
                    mixed = (
                        s * 0x9E3779B97F4A7C15
                        ^ label_id * 0xBF58476D1CE4E5B9
                        ^ t * 0x94D049BB133111EB
                    ) & mask64
                    mixed ^= mixed >> 30
                    mixed = (mixed * 0xBF58476D1CE4E5B9) & mask64
                    mixed ^= mixed >> 27
                    accumulator = (accumulator + mixed) & mask64
        digest = hashlib.sha256()
        digest.update(
            f"{self.num_vertices}|{self.num_edges}|{self.num_labels}|"
            f"{accumulator:016x}|".encode()
        )
        digest.update("\x1f".join(self._labels.names()).encode())
        return digest.hexdigest()[:16]

    # ------------------------------------------------------------------
    # freezing
    # ------------------------------------------------------------------

    def freeze(self) -> "KnowledgeGraph":
        """A read-optimized CSR snapshot of this graph.

        Returns a :class:`~repro.graph.csr.FrozenGraph` sharing this
        graph's interning, schema and edge set (vertex and label ids are
        identical).  The snapshot is cached: repeated calls return the
        same object until the graph mutates (tracked by
        :attr:`mutation_count`, so a removal+insertion that leaves every
        size unchanged still re-freezes), after which a fresh snapshot
        is built.  See :mod:`repro.graph.csr` for layout and the
        immutability contract.
        """
        from repro.graph.csr import FrozenGraph  # deferred: csr imports us

        version = self._mutations
        cached = self._frozen
        if cached is not None and cached[0] == version:
            return cached[1]
        snapshot = FrozenGraph(self)
        self._frozen = (version, snapshot)
        return snapshot
