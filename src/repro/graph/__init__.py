"""Knowledge-graph substrate: labeled multigraph, labels, schema, IO."""

from repro.graph.builder import GraphBuilder
from repro.graph.csr import CsrDirection, FrozenGraph, base_graph, freeze_graph
from repro.graph.labeled_graph import Edge, KnowledgeGraph
from repro.graph.labels import LabelUniverse, iter_mask_bits, mask_is_subset, popcount
from repro.graph.rdf import (
    RDF_TYPE,
    RDF_VOCABULARY,
    RDFS_CLASS,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASS_OF,
    is_rdf_vocabulary,
)
from repro.graph.schema import RDFSchema
from repro.graph.stats import GraphStats, degree_histogram, graph_stats, label_histogram
from repro.graph.views import copy_graph, induced_subgraph, reverse

__all__ = [
    "CsrDirection",
    "Edge",
    "FrozenGraph",
    "GraphBuilder",
    "GraphStats",
    "KnowledgeGraph",
    "LabelUniverse",
    "RDFSchema",
    "RDF_TYPE",
    "RDF_VOCABULARY",
    "RDFS_CLASS",
    "RDFS_DOMAIN",
    "RDFS_RANGE",
    "RDFS_SUBCLASS_OF",
    "base_graph",
    "copy_graph",
    "freeze_graph",
    "degree_histogram",
    "graph_stats",
    "induced_subgraph",
    "is_rdf_vocabulary",
    "iter_mask_bits",
    "label_histogram",
    "mask_is_subset",
    "popcount",
    "reverse",
]
