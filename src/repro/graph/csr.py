"""Frozen CSR snapshots of a :class:`KnowledgeGraph` — the serving layout.

The dict-backed :class:`~repro.graph.labeled_graph.KnowledgeGraph` is
the right *build-time* representation (cheap interning, cheap edge
insertion) and the wrong *query-time* one: every expansion step walks a
``dict[label_id, list[int]]`` per vertex, paying a hash probe per label
and a tuple allocation per yielded edge.  :class:`FrozenGraph` is the
read-optimized twin the query service traverses instead:

* **per-direction CSR** — one flat ``array('q')`` of edge labels and one
  of edge targets, with an offsets array delimiting each vertex's
  contiguous slice; within a slice edges are sorted by label id (stable,
  so per-label target order matches the dict graph exactly), which makes
  every ``(vertex, label)`` group one contiguous sub-slice, also cut as
  a cached tuple at freeze time;
* **per-vertex label-presence bitmasks** — ``out_label_mask(v)`` is the
  set of labels on ``v``'s out-edges as one int, so the expansion step's
  question "does ``v`` have any edge inside the constraint ``L``?" is a
  single ``mask & query_mask`` AND: vertices whose labels all fall
  outside the constraint are skipped without touching an edge, and
  vertices whose labels all fall *inside* it hand back their whole
  target slice as a zero-copy :class:`memoryview`;
* **shared interning** — vertex ids, label ids, names, the schema, the
  edge set and the per-label edge lists are the *same objects* as the
  source graph's, so a frozen graph is drop-in compatible with every id
  computed before freezing (indexes, cached constraints, planner keys).

``FrozenGraph`` subclasses ``KnowledgeGraph``: read APIs not overridden
here (degrees, id/name mapping, ``has_edge``, ``edges_with_label``, ...)
run unchanged on the shared structures, while the mutation APIs raise
:class:`~repro.exceptions.FrozenGraphError` — a snapshot answers for the
graph as it was at :func:`freeze_graph` time.  The source graph must not
be mutated while its snapshot serves (the service's existing
immutability contract); re-freezing after mutations builds a fresh
snapshot.
"""

from __future__ import annotations

from array import array
from collections.abc import Hashable, Iterator

from repro.exceptions import FrozenGraphError
from repro.graph.labeled_graph import Edge, KnowledgeGraph
from repro.graph.labels import iter_mask_bits

__all__ = ["FrozenGraph", "CsrDirection", "freeze_graph", "base_graph"]

#: Shared empty sequence for mask-rejected expansions (no per-call allocation).
_EMPTY: tuple[int, ...] = ()

#: Distinct query masks a direction will materialise adjacency views
#: for; beyond this, lookups fall back to building per call (bounds
#: memory under adversarial mask churn — real services see a handful).
_MASK_VIEW_LIMIT = 64


class CsrDirection:
    """One direction's flat adjacency: offsets + label-sorted edge arrays.

    ``offsets[v] : offsets[v + 1]`` delimits vertex ``v``'s slice of
    ``labels`` / ``targets``; ``masks[v]`` is the bitmask of the distinct
    labels inside that slice.  The three arrays are the canonical compact
    layout (and the seam a future native kernel would consume); the hot
    lookups are additionally served from slice caches cut at freeze
    time, because in pure Python iterating a cached tuple is ~2x faster
    than iterating a memoryview slice of the arrays and ~3x faster than
    walking the source dicts:

    * ``all_targets[v]`` — the whole target slice as one tuple, returned
      allocation-free when the query mask covers every label on ``v``
      (the overwhelmingly common case for 2-4-label constraints);
    * ``groups[v]`` — ``(label_id, targets_tuple)`` pairs in ascending
      label order, iterated (one step per *distinct label*, never per
      edge) when the mask hits only part of the slice.
    """

    __slots__ = (
        "offsets",
        "labels",
        "targets",
        "masks",
        "all_targets",
        "groups",
        "_mask_views",
    )

    def __init__(self, adjacency: list[dict[int, list[int]]]) -> None:
        offsets = array("q", [0])
        labels = array("q")
        targets = array("q")
        masks: list[int] = []
        all_targets: list[tuple[int, ...]] = []
        groups: list[tuple[tuple[int, tuple[int, ...]], ...]] = []
        total = 0
        for per_vertex in adjacency:
            vertex_mask = 0
            vertex_groups: list[tuple[int, tuple[int, ...]]] = []
            flat: list[int] = []
            for label_id in sorted(per_vertex):
                vertex_mask |= 1 << label_id
                vertex_targets = per_vertex[label_id]
                labels.extend([label_id] * len(vertex_targets))
                targets.extend(vertex_targets)
                vertex_groups.append((label_id, tuple(vertex_targets)))
                flat.extend(vertex_targets)
                total += len(vertex_targets)
            masks.append(vertex_mask)
            offsets.append(total)
            all_targets.append(tuple(flat))
            groups.append(tuple(vertex_groups))
        self.offsets = offsets
        self.labels = labels
        self.targets = targets
        self.masks = masks
        self.all_targets = all_targets
        self.groups = groups
        # Lazily materialised per-query-mask adjacency views; see
        # targets_masked.  {mask: {vertex: cached tuple}} — keyed by the
        # vertices a query actually touches, so memory is bounded by
        # traffic, not |V| x distinct masks.
        self._mask_views: dict[int, dict[int, tuple[int, ...]]] = {}

    def by_label(self, vid: int, label_id: int) -> tuple[int, ...]:
        """The ``(vid, label_id)`` target group (cached tuple; maybe empty)."""
        if not self.masks[vid] >> label_id & 1:
            return _EMPTY
        for group_label, group_targets in self.groups[vid]:
            if group_label == label_id:
                return group_targets
        return _EMPTY  # pragma: no cover - mask and groups always agree

    def targets_masked(self, vid: int, mask: int) -> tuple[int, ...]:
        """Neighbor ids of ``vid`` whose edge label is inside ``mask``.

        The fast paths of every search hot loop, all allocation-free in
        steady state:

        * no vertex label in ``mask`` — the shared empty tuple after a
          single ``vertex_mask & query_mask`` AND;
        * every vertex label in ``mask`` — the cached full slice;
        * otherwise — a per-``(mask, vertex)`` view concatenating one
          cached group per allowed label, materialised on first touch
          and reused for the rest of the query (and every later query
          with the same constraint mask — services see few distinct
          masks).  Distinct masks are capped; overflow traffic simply
          rebuilds per call.

        Concurrent readers are safe: view cells are only ever written
        with the value any other thread would compute, and CPython
        dict/list updates are atomic under the GIL.
        """
        vertex_mask = self.masks[vid]
        hit = vertex_mask & mask
        if not hit:
            return _EMPTY
        if not vertex_mask & ~mask:
            return self.all_targets[vid]
        views = self._mask_views.get(mask)
        if views is None:
            if len(self._mask_views) >= _MASK_VIEW_LIMIT:
                return self._build_masked(vid, mask)
            views = self._mask_views[mask] = {}
        cached = views.get(vid)
        if cached is None:
            cached = views[vid] = self._build_masked(vid, mask)
        return cached

    def _build_masked(self, vid: int, mask: int) -> tuple[int, ...]:
        result: list[int] = []
        for label_id, group_targets in self.groups[vid]:
            if mask >> label_id & 1:
                result.extend(group_targets)
        return tuple(result)

    @classmethod
    def restricted(
        cls, graph: KnowledgeGraph, vertices: "list[int] | tuple[int, ...]"
    ) -> "CsrDirection":
        """CSR over a vertex subset — the slice seam for :mod:`repro.shard`.

        Row ``i`` holds ``vertices[i]``'s *out*-adjacency; targets keep
        their **global** vertex ids (a slice's edges may point at
        vertices owned elsewhere).  Every flat-array/label-mask fast
        path of :meth:`targets_masked` then works unchanged on the
        slice, indexed by local position.
        """
        adjacency: list[dict[int, list[int]]] = []
        for vid in vertices:
            per_vertex: dict[int, list[int]] = {}
            for label_id, target in graph.out_edges(vid):
                per_vertex.setdefault(label_id, []).append(target)
            adjacency.append(per_vertex)
        return cls(adjacency)


class FrozenGraph(KnowledgeGraph):
    """Read-only CSR snapshot of a :class:`KnowledgeGraph`.

    Construct via :meth:`KnowledgeGraph.freeze` / :func:`freeze_graph`.
    Ids, names, labels and the schema are shared with ``source``, so any
    id-keyed structure built against the source (a local index, cached
    candidate lists, planner keys) remains valid against the snapshot.

    >>> g = KnowledgeGraph()
    >>> _ = g.add_edge("a", "l", "b")
    >>> fg = g.freeze()
    >>> list(fg.out_targets_masked(fg.vid("a"), fg.label_mask(["l"])))
    [1]
    """

    __slots__ = ("source", "_csr_out", "_csr_in")

    def __init__(self, source: KnowledgeGraph) -> None:
        if isinstance(source, FrozenGraph):
            source = source.source
        # Deliberately no super().__init__(): every base slot is bound to
        # the *source's* structures so inherited read methods answer for
        # the same graph, ids included.
        self.source = source
        self.name = source.name
        self.schema = source.schema
        self._labels = source._labels
        self._vertex_ids = source._vertex_ids
        self._vertex_names = source._vertex_names
        self._out = source._out
        self._in = source._in
        self._out_degree = source._out_degree
        self._in_degree = source._in_degree
        self._edge_set = source._edge_set
        self._by_label = source._by_label
        self._label_edge_count = source._label_edge_count
        self._frozen = None  # never consulted: freeze() returns self
        self._mutations = source._mutations
        self._csr_out = CsrDirection(source._out)
        self._csr_in = CsrDirection(source._in)

    def __repr__(self) -> str:
        return (
            f"FrozenGraph({self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, |L|={self.num_labels})"
        )

    # ------------------------------------------------------------------
    # snapshots are immutable
    # ------------------------------------------------------------------

    def add_vertex(self, name: Hashable) -> int:
        raise FrozenGraphError(
            f"cannot add vertex {name!r}: this graph is a frozen snapshot; "
            "mutate the source graph and freeze() again"
        )

    def add_edge(self, source: Hashable, label: str, target: Hashable) -> bool:
        raise FrozenGraphError(
            f"cannot add edge ({source!r}, {label!r}, {target!r}): this graph "
            "is a frozen snapshot; mutate the source graph and freeze() again"
        )

    def add_edge_ids(self, s: int, label_id: int, t: int) -> bool:
        raise FrozenGraphError(
            f"cannot add edge ({s}, {label_id}, {t}): this graph is a frozen "
            "snapshot; mutate the source graph and freeze() again"
        )

    def remove_edge(self, source: Hashable, label: str, target: Hashable) -> bool:
        raise FrozenGraphError(
            f"cannot remove edge ({source!r}, {label!r}, {target!r}): this "
            "graph is a frozen snapshot; mutate the source graph and "
            "freeze() again"
        )

    def remove_edge_ids(self, s: int, label_id: int, t: int) -> bool:
        raise FrozenGraphError(
            f"cannot remove edge ({s}, {label_id}, {t}): this graph is a "
            "frozen snapshot; mutate the source graph and freeze() again"
        )

    def copy(self, name: str | None = None) -> KnowledgeGraph:
        """A mutable deep copy of the *source* graph (snapshots don't copy)."""
        return self.source.copy(name=name)

    def freeze(self) -> "FrozenGraph":
        """A frozen graph is its own snapshot."""
        return self

    # ------------------------------------------------------------------
    # label-presence masks (the pre-test of every rewritten hot loop)
    # ------------------------------------------------------------------

    def out_label_mask(self, vid: int) -> int:
        """Bitmask of distinct labels on ``vid``'s out-edges (O(1))."""
        return self._csr_out.masks[vid]

    def in_label_mask(self, vid: int) -> int:
        """Bitmask of distinct labels on ``vid``'s in-edges (O(1))."""
        return self._csr_in.masks[vid]

    def has_out_label(self, vid: int, label_id: int) -> bool:
        """True iff ``vid`` has an out-edge labeled ``label_id`` (O(1))."""
        return bool(self._csr_out.masks[vid] >> label_id & 1)

    def has_in_label(self, vid: int, label_id: int) -> bool:
        """True iff ``vid`` has an in-edge labeled ``label_id`` (O(1))."""
        return bool(self._csr_in.masks[vid] >> label_id & 1)

    # ------------------------------------------------------------------
    # CSR-backed iteration (overrides of the dict-walking base methods)
    # ------------------------------------------------------------------

    def edges(self) -> Iterator[Edge]:
        csr = self._csr_out
        offsets, labels, targets = csr.offsets, csr.labels, csr.targets
        for s in range(self.num_vertices):
            for position in range(offsets[s], offsets[s + 1]):
                yield (s, labels[position], targets[position])

    def out_edges(self, vid: int) -> Iterator[tuple[int, int]]:
        csr = self._csr_out
        labels, targets = csr.labels, csr.targets
        for position in range(csr.offsets[vid], csr.offsets[vid + 1]):
            yield (labels[position], targets[position])

    def in_edges(self, vid: int) -> Iterator[tuple[int, int]]:
        csr = self._csr_in
        labels, targets = csr.labels, csr.targets
        for position in range(csr.offsets[vid], csr.offsets[vid + 1]):
            yield (labels[position], targets[position])

    def out_by_label(self, vid: int, label_id: int):
        """The cached ``(vid, label_id)`` target group; ``()`` on O(1) miss."""
        return self._csr_out.by_label(vid, label_id)

    def in_by_label(self, vid: int, label_id: int):
        """The cached ``(vid, label_id)`` source group; ``()`` on O(1) miss."""
        return self._csr_in.by_label(vid, label_id)

    def out_masked(self, vid: int, mask: int) -> Iterator[tuple[int, int]]:
        csr = self._csr_out
        if not csr.masks[vid] & mask:
            return
        for label_id, group_targets in csr.groups[vid]:
            if mask >> label_id & 1:
                for target in group_targets:
                    yield (label_id, target)

    def in_masked(self, vid: int, mask: int) -> Iterator[tuple[int, int]]:
        csr = self._csr_in
        if not csr.masks[vid] & mask:
            return
        for label_id, group_targets in csr.groups[vid]:
            if mask >> label_id & 1:
                for target in group_targets:
                    yield (label_id, target)

    def out_targets_masked(self, vid: int, mask: int):
        """Targets of ``vid``'s out-edges with labels inside ``mask``."""
        return self._csr_out.targets_masked(vid, mask)

    def in_targets_masked(self, vid: int, mask: int):
        """Sources of ``vid``'s in-edges with labels inside ``mask``."""
        return self._csr_in.targets_masked(vid, mask)

    def out_labels(self, vid: int) -> Iterator[int]:
        """Distinct out-labels, ascending (decoded from the vertex mask)."""
        return iter_mask_bits(self._csr_out.masks[vid])

    def labels_between(self, s: int, t: int) -> int:
        """Mask of labels on direct ``s -> t`` edges via O(1) set probes."""
        mask = 0
        edge_set = self._edge_set
        for label_id in iter_mask_bits(self._csr_out.masks[s]):
            if (s, label_id, t) in edge_set:
                mask |= 1 << label_id
        return mask


def freeze_graph(graph: KnowledgeGraph) -> FrozenGraph:
    """``graph.freeze()`` as a function (idempotent on snapshots)."""
    return graph.freeze()


def base_graph(graph: KnowledgeGraph) -> KnowledgeGraph:
    """The mutable source under ``graph`` (itself when not frozen).

    Identity checks like "was this index built for this graph?" must
    treat a graph and its snapshots as one graph.
    """
    return getattr(graph, "source", graph)
