"""Derived graph views: reversal and induced subgraphs.

The local index of Algorithm 3 works with landmark *regions* — subgraphs
``F(u)`` induced by the region assignment of ``BFSTraverse``.  Tests and
the ground-truth CMS computation need those regions as first-class
graphs; :func:`induced_subgraph` materialises them.  :func:`reverse`
supports backward searches (used by workload generation to pick targets
that can actually be reached).
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable

from repro.graph.labeled_graph import KnowledgeGraph
from repro.graph.schema import RDFSchema

__all__ = ["reverse", "induced_subgraph", "copy_graph"]


def reverse(graph: KnowledgeGraph, name: str | None = None) -> KnowledgeGraph:
    """A new graph with every edge direction flipped.

    Vertex ids *and* label ids are preserved (both tables are replayed
    in the original order before any edge is added), so label masks and
    vertex ids computed against the original graph are directly valid on
    the reversed one — backward searches rely on this.
    """
    result = KnowledgeGraph(name=name or f"{graph.name}~reversed")
    result.schema = graph.schema
    for vertex_name in graph.vertex_names():
        result.add_vertex(vertex_name)
    for label in graph.labels:
        result.labels.intern(label)
    for s, label_id, t in graph.edges():
        result.add_edge_ids(t, label_id, s)
    return result


def induced_subgraph(
    graph: KnowledgeGraph,
    vertex_ids: Iterable[int],
    name: str | None = None,
    edge_filter: Callable[[int, int, int], bool] | None = None,
) -> KnowledgeGraph:
    """Subgraph induced by ``vertex_ids`` (edges with both ends inside).

    ``edge_filter(s, label_id, t)`` — ids in the *parent* graph — can
    drop further edges.  Vertex names are preserved, so label/vertex ids
    in the result are freshly interned and generally differ from the
    parent's; use names to correlate.
    """
    keep = set(vertex_ids)
    result = KnowledgeGraph(name=name or f"{graph.name}~induced")
    result.schema = graph.schema
    for vid in sorted(keep):
        result.add_vertex(graph.name_of(vid))
    for s in sorted(keep):
        source_name = graph.name_of(s)
        for label_id, t in graph.out_edges(s):
            if t not in keep:
                continue
            if edge_filter is not None and not edge_filter(s, label_id, t):
                continue
            result.add_edge(source_name, graph.label_name(label_id), graph.name_of(t))
    return result


def copy_graph(graph: KnowledgeGraph, name: str | None = None) -> KnowledgeGraph:
    """Deep copy of the graph structure (schema copied too).

    Vertex and label ids are preserved because insertion order is
    replayed exactly.
    """
    result = KnowledgeGraph(name=name or graph.name)
    schema = RDFSchema()
    if isinstance(graph.schema, RDFSchema):
        schema.merge(graph.schema)
    result.schema = schema
    for vertex_name in graph.vertex_names():
        result.add_vertex(vertex_name)
    for label in graph.labels:
        result.labels.intern(label)
    for s, label_id, t in graph.edges():
        result.add_edge_ids(s, label_id, t)
    return result
