"""Serialisation of knowledge graphs.

Two formats are supported:

* **TSV edge list** — one ``source<TAB>label<TAB>target`` line per edge;
  the natural interchange format for the synthetic generators and the
  benchmark harness (fast, diff-able, no escaping headaches as vertex
  names in this library never contain tabs/newlines);
* **N-Triples-like** — ``<s> <p> <o> .`` lines with prefixed names
  expanded to IRIs, for interoperability with RDF tooling.  The reader
  accepts both full IRIs (re-shortened through the prefix table) and bare
  tokens, which covers the files the writer produces.

Schema statements travel as ordinary ``rdf:type`` / ``rdfs:subClassOf``
edges (as they do in the paper's Figure 2); :func:`load_tsv` rebuilds the
:class:`~repro.graph.schema.RDFSchema` from them on the way in.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

from repro.exceptions import GraphError
from repro.graph.labeled_graph import KnowledgeGraph
from repro.graph.rdf import RDF_TYPE, RDFS_SUBCLASS_OF, expand, shorten
from repro.graph.schema import RDFSchema

__all__ = [
    "dump_tsv",
    "load_tsv",
    "dumps_tsv",
    "loads_tsv",
    "dump_ntriples",
    "load_ntriples",
]


# ----------------------------------------------------------------------
# TSV edge list
# ----------------------------------------------------------------------


def dump_tsv(graph: KnowledgeGraph, destination: str | Path | TextIO) -> None:
    """Write ``graph`` as a TSV edge list (deterministic edge order)."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            _write_tsv(graph, handle)
    else:
        _write_tsv(graph, destination)


def _write_tsv(graph: KnowledgeGraph, handle: TextIO) -> None:
    for source, label, target in graph.edges_named():
        handle.write(f"{source}\t{label}\t{target}\n")


def dumps_tsv(graph: KnowledgeGraph) -> str:
    """TSV edge list as a string."""
    buffer = io.StringIO()
    _write_tsv(graph, buffer)
    return buffer.getvalue()


def load_tsv(
    source: str | Path | TextIO,
    name: str = "kg",
    rebuild_schema: bool = True,
) -> KnowledgeGraph:
    """Read a TSV edge list back into a graph (schema rebuilt by default)."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _read_tsv(handle, name, rebuild_schema)
    return _read_tsv(source, name, rebuild_schema)


def loads_tsv(text: str, name: str = "kg", rebuild_schema: bool = True) -> KnowledgeGraph:
    """Parse a TSV edge list from a string."""
    return _read_tsv(io.StringIO(text), name, rebuild_schema)


def _read_tsv(handle: TextIO, name: str, rebuild_schema: bool) -> KnowledgeGraph:
    graph = KnowledgeGraph(name=name)
    schema = RDFSchema()
    graph.schema = schema
    for line_number, raw in enumerate(handle, start=1):
        line = raw.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) != 3:
            raise GraphError(
                f"malformed TSV edge on line {line_number}: expected 3 "
                f"tab-separated fields, got {len(parts)}"
            )
        source, label, target = parts
        graph.add_edge(source, label, target)
        if rebuild_schema:
            if label == RDF_TYPE:
                schema.add_instance(source, target)
            elif label == RDFS_SUBCLASS_OF:
                schema.add_subclass(source, target)
    return graph


# ----------------------------------------------------------------------
# N-Triples-like
# ----------------------------------------------------------------------


def dump_ntriples(graph: KnowledgeGraph, destination: str | Path | TextIO) -> None:
    """Write ``graph`` as N-Triples with prefixed names expanded to IRIs."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            _write_ntriples(graph, handle)
    else:
        _write_ntriples(graph, destination)


def _write_ntriples(graph: KnowledgeGraph, handle: TextIO) -> None:
    for source, label, target in graph.edges_named():
        handle.write(
            f"<{expand(str(source))}> <{expand(label)}> <{expand(str(target))}> .\n"
        )


def load_ntriples(
    source: str | Path | TextIO,
    name: str = "kg",
    rebuild_schema: bool = True,
) -> KnowledgeGraph:
    """Read an N-Triples-like file (IRIs shortened via the prefix table)."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _read_ntriples(handle, name, rebuild_schema)
    return _read_ntriples(source, name, rebuild_schema)


def _read_ntriples(handle: TextIO, name: str, rebuild_schema: bool) -> KnowledgeGraph:
    graph = KnowledgeGraph(name=name)
    schema = RDFSchema()
    graph.schema = schema
    for line_number, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        triple = _parse_ntriple_line(line, line_number)
        source, label, target = triple
        graph.add_edge(source, label, target)
        if rebuild_schema:
            if label == RDF_TYPE:
                schema.add_instance(source, target)
            elif label == RDFS_SUBCLASS_OF:
                schema.add_subclass(source, target)
    return graph


def _parse_ntriple_line(line: str, line_number: int) -> tuple[str, str, str]:
    if not line.endswith("."):
        raise GraphError(f"N-Triples line {line_number} does not end with '.'")
    body = line[:-1].strip()
    terms: list[str] = []
    index = 0
    while index < len(body) and len(terms) < 3:
        char = body[index]
        if char.isspace():
            index += 1
            continue
        if char == "<":
            close = body.find(">", index)
            if close == -1:
                raise GraphError(f"unterminated IRI on N-Triples line {line_number}")
            terms.append(shorten(body[index + 1 : close]))
            index = close + 1
        elif char == '"':
            close = body.find('"', index + 1)
            if close == -1:
                raise GraphError(f"unterminated literal on N-Triples line {line_number}")
            terms.append(body[index + 1 : close])
            index = close + 1
        else:
            end = index
            while end < len(body) and not body[end].isspace():
                end += 1
            terms.append(shorten(body[index:end]))
            index = end
    if len(terms) != 3:
        raise GraphError(
            f"N-Triples line {line_number}: expected 3 terms, found {len(terms)}"
        )
    return terms[0], terms[1], terms[2]
