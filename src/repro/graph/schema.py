"""RDFS schema (the ``LS`` component of Definition 2.1).

The schema records the RDFS triples of the knowledge graph: class
declarations, the ``rdfs:subClassOf`` hierarchy, ``rdf:type`` assertions
(instance registry), and ``rdfs:domain`` / ``rdfs:range`` statements for
edge labels.  Two parts of the reproduction depend on it:

* **landmark selection** (Algorithm 3, Section 5.1.2): INS selects
  landmarks by first sampling *classes* from ``LS`` and then evenly
  marking instances of those classes, instead of taking highest-degree
  vertices — which on a KG would be class hubs reachable only through
  RDF vocabulary edges;
* **random substructure constraints** (Section 6.2): constraints are
  grown outward from a random instance vertex, guided by the schema.

The schema is name-based (it stores vertex *names*, not ids) so it can be
populated before or after the graph and serialised independently.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.exceptions import SchemaError

__all__ = ["RDFSchema"]


class RDFSchema:
    """Registry of classes, subclass edges, instances, domains and ranges."""

    __slots__ = (
        "_classes",
        "_superclasses",
        "_subclasses",
        "_instances_by_class",
        "_classes_by_instance",
        "_domains",
        "_ranges",
    )

    def __init__(self) -> None:
        self._classes: set[str] = set()
        self._superclasses: dict[str, set[str]] = {}
        self._subclasses: dict[str, set[str]] = {}
        self._instances_by_class: dict[str, list[Hashable]] = {}
        self._classes_by_instance: dict[Hashable, set[str]] = {}
        self._domains: dict[str, str] = {}
        self._ranges: dict[str, str] = {}

    def __repr__(self) -> str:
        return (
            f"RDFSchema({len(self._classes)} classes, "
            f"{sum(len(v) for v in self._instances_by_class.values())} typed instances)"
        )

    # ------------------------------------------------------------------
    # classes
    # ------------------------------------------------------------------

    def add_class(self, name: str) -> None:
        """Declare ``name`` as an ``rdfs:Class`` (idempotent)."""
        self._classes.add(name)

    def has_class(self, name: str) -> bool:
        """True if ``name`` was declared as a class."""
        return name in self._classes

    def classes(self) -> tuple[str, ...]:
        """All declared classes, sorted for determinism."""
        return tuple(sorted(self._classes))

    def add_subclass(self, subclass: str, superclass: str) -> None:
        """Record ``subclass rdfs:subClassOf superclass`` (declares both)."""
        self.add_class(subclass)
        self.add_class(superclass)
        self._superclasses.setdefault(subclass, set()).add(superclass)
        self._subclasses.setdefault(superclass, set()).add(subclass)

    def superclasses(self, name: str, transitive: bool = True) -> set[str]:
        """Superclasses of ``name`` (transitively by default, excl. itself)."""
        return self._closure(name, self._superclasses, transitive)

    def subclasses(self, name: str, transitive: bool = True) -> set[str]:
        """Subclasses of ``name`` (transitively by default, excl. itself)."""
        return self._closure(name, self._subclasses, transitive)

    @staticmethod
    def _closure(start: str, edges: dict[str, set[str]], transitive: bool) -> set[str]:
        direct = edges.get(start, set())
        if not transitive:
            return set(direct)
        seen: set[str] = set()
        stack = list(direct)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(edges.get(current, ()))
        return seen

    # ------------------------------------------------------------------
    # instances (rdf:type assertions)
    # ------------------------------------------------------------------

    def add_instance(self, instance: Hashable, class_name: str) -> None:
        """Record ``instance rdf:type class_name`` (declares the class)."""
        self.add_class(class_name)
        known = self._classes_by_instance.setdefault(instance, set())
        if class_name in known:
            return
        known.add(class_name)
        self._instances_by_class.setdefault(class_name, []).append(instance)

    def instances_of(self, class_name: str, transitive: bool = True) -> list[Hashable]:
        """Instances of ``class_name`` (including subclasses by default).

        Returned in insertion order (deterministic for seeded generators);
        with ``transitive`` the subclass extensions are appended in sorted
        subclass order, deduplicated.
        """
        result = list(self._instances_by_class.get(class_name, ()))
        if transitive:
            seen = set(result)
            for sub in sorted(self.subclasses(class_name)):
                for instance in self._instances_by_class.get(sub, ()):
                    if instance not in seen:
                        seen.add(instance)
                        result.append(instance)
        return result

    def classes_of(self, instance: Hashable) -> set[str]:
        """Directly asserted classes of ``instance`` (no closure)."""
        return set(self._classes_by_instance.get(instance, ()))

    def is_instance(self, instance: Hashable, class_name: str) -> bool:
        """True if ``instance`` is typed by ``class_name`` or a subclass."""
        direct = self._classes_by_instance.get(instance)
        if not direct:
            return False
        if class_name in direct:
            return True
        return any(class_name in self.superclasses(c) for c in direct)

    def typed_instances(self) -> Iterator[Hashable]:
        """Every instance with at least one ``rdf:type`` assertion."""
        return iter(self._classes_by_instance)

    # ------------------------------------------------------------------
    # property domains / ranges
    # ------------------------------------------------------------------

    def set_domain(self, prop: str, class_name: str) -> None:
        """Record ``prop rdfs:domain class_name``."""
        self.add_class(class_name)
        self._domains[prop] = class_name

    def set_range(self, prop: str, class_name: str) -> None:
        """Record ``prop rdfs:range class_name``."""
        self.add_class(class_name)
        self._ranges[prop] = class_name

    def domain_of(self, prop: str) -> str | None:
        """Declared domain class of ``prop``, if any."""
        return self._domains.get(prop)

    def range_of(self, prop: str) -> str | None:
        """Declared range class of ``prop``, if any."""
        return self._ranges.get(prop)

    def properties(self) -> tuple[str, ...]:
        """Properties with a declared domain or range, sorted."""
        return tuple(sorted(set(self._domains) | set(self._ranges)))

    # ------------------------------------------------------------------
    # bulk helpers
    # ------------------------------------------------------------------

    def sample_classes(
        self,
        rng,
        count: int,
        with_instances_only: bool = True,
    ) -> list[str]:
        """Randomly select ``count`` distinct classes (Algorithm 3, line 1).

        With ``with_instances_only`` (the useful setting for landmark
        selection) only classes having at least one instance are eligible.
        Raises :class:`SchemaError` when no class is eligible.
        """
        if with_instances_only:
            eligible = sorted(c for c in self._classes if self._instances_by_class.get(c))
        else:
            eligible = sorted(self._classes)
        if not eligible:
            raise SchemaError("schema has no eligible classes to sample from")
        count = min(count, len(eligible))
        return rng.sample(eligible, count)

    def merge(self, other: "RDFSchema") -> None:
        """Union ``other`` into this schema (used by graph unions in tests)."""
        for cls in other._classes:
            self.add_class(cls)
        for sub, supers in other._superclasses.items():
            for sup in supers:
                self.add_subclass(sub, sup)
        for cls, instances in other._instances_by_class.items():
            for instance in instances:
                self.add_instance(instance, cls)
        for prop, cls in other._domains.items():
            self.set_domain(prop, cls)
        for prop, cls in other._ranges.items():
            self.set_range(prop, cls)

    def triples(self) -> Iterator[tuple[Hashable, str, Hashable]]:
        """Yield the schema as RDF triples (the literal ``LS`` set)."""
        from repro.graph.rdf import RDF_TYPE, RDFS_CLASS, RDFS_DOMAIN, RDFS_RANGE, RDFS_SUBCLASS_OF

        for cls in sorted(self._classes):
            yield (cls, RDF_TYPE, RDFS_CLASS)
        for sub in sorted(self._superclasses):
            for sup in sorted(self._superclasses[sub]):
                yield (sub, RDFS_SUBCLASS_OF, sup)
        for cls in sorted(self._instances_by_class):
            for instance in self._instances_by_class[cls]:
                yield (instance, RDF_TYPE, cls)
        for prop in sorted(self._domains):
            yield (prop, RDFS_DOMAIN, self._domains[prop])
        for prop in sorted(self._ranges):
            yield (prop, RDFS_RANGE, self._ranges[prop])
