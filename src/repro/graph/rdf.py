"""RDF/RDFS vocabulary constants and naming helpers.

The paper (Section 2) models knowledge graphs as RDF graphs structured by
RDFS: class vertices, ``rdf:type`` edges from instances to classes,
``rdfs:subClassOf`` edges between classes, and ``rdfs:domain`` /
``rdfs:range`` statements tying edge labels to classes (Figure 2).  The
reproduction keeps the familiar prefixed-name spelling (``rdf:type``)
rather than full IRIs; :func:`expand` / :func:`shorten` convert between
the two for interoperability with N-Triples files.
"""

from __future__ import annotations

__all__ = [
    "RDF_TYPE",
    "RDFS_SUBCLASS_OF",
    "RDFS_DOMAIN",
    "RDFS_RANGE",
    "RDFS_CLASS",
    "RDF_VOCABULARY",
    "PREFIXES",
    "expand",
    "shorten",
    "is_rdf_vocabulary",
]

RDF_TYPE = "rdf:type"
RDFS_SUBCLASS_OF = "rdfs:subClassOf"
RDFS_DOMAIN = "rdfs:domain"
RDFS_RANGE = "rdfs:range"
RDFS_CLASS = "rdfs:Class"

#: Edge labels carrying schema (rather than instance) information.  The
#: landmark selection of Algorithm 3 deliberately avoids landmarks whose
#: incident edges are dominated by these labels (Section 5.1.2).
RDF_VOCABULARY: frozenset[str] = frozenset(
    {RDF_TYPE, RDFS_SUBCLASS_OF, RDFS_DOMAIN, RDFS_RANGE, RDFS_CLASS}
)

#: Prefix table used when expanding prefixed names to IRIs.
PREFIXES: dict[str, str] = {
    "rdf": "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
    "rdfs": "http://www.w3.org/2000/01/rdf-schema#",
    "ub": "http://swat.cse.lehigh.edu/onto/univ-bench.owl#",
    "eg": "http://example.org/",
    "yago": "http://yago-knowledge.org/resource/",
}


def is_rdf_vocabulary(label: str) -> bool:
    """True if ``label`` is one of the special RDF/RDFS vocabulary terms."""
    return label in RDF_VOCABULARY


def expand(name: str, prefixes: dict[str, str] | None = None) -> str:
    """Expand a prefixed name (``ub:Course``) to a full IRI.

    Names without a known prefix are returned unchanged, so the function
    is safe to apply to plain identifiers.
    """
    table = PREFIXES if prefixes is None else prefixes
    prefix, sep, local = name.partition(":")
    if sep and prefix in table:
        return table[prefix] + local
    return name


def shorten(iri: str, prefixes: dict[str, str] | None = None) -> str:
    """Shorten a full IRI back to a prefixed name when a prefix matches.

    The longest matching namespace wins; unmatched IRIs are returned
    unchanged.
    """
    table = PREFIXES if prefixes is None else prefixes
    best_prefix = None
    best_namespace = ""
    for prefix, namespace in table.items():
        if iri.startswith(namespace) and len(namespace) > len(best_namespace):
            best_prefix = prefix
            best_namespace = namespace
    if best_prefix is None:
        return iri
    return f"{best_prefix}:{iri[len(best_namespace):]}"
