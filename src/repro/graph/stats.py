"""Descriptive statistics of a knowledge graph.

Used by the benchmark harness to print the dataset table (the |V| / |E| /
density columns of Table 2) and by tests asserting that the synthetic
generators produce the intended profiles (e.g. the YAGO substitute is
scale-free: a heavy-tailed degree distribution).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

from repro.graph.labeled_graph import KnowledgeGraph

__all__ = ["GraphStats", "graph_stats", "degree_histogram", "label_histogram"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of one graph."""

    name: str
    num_vertices: int
    num_edges: int
    num_labels: int
    density: float
    max_out_degree: int
    max_in_degree: int
    mean_degree: float
    degree_gini: float
    label_counts: dict[str, int] = field(repr=False, default_factory=dict)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: |V|={self.num_vertices:,} |E|={self.num_edges:,} "
            f"|L|={self.num_labels} D={self.density:.2f} "
            f"max_deg(out/in)={self.max_out_degree}/{self.max_in_degree} "
            f"gini={self.degree_gini:.2f}"
        )


def graph_stats(graph: KnowledgeGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    n = graph.num_vertices
    out_degrees = [graph.out_degree(v) for v in graph.vertices()]
    in_degrees = [graph.in_degree(v) for v in graph.vertices()]
    totals = [o + i for o, i in zip(out_degrees, in_degrees)]
    label_counts = {
        graph.label_name(label_id): graph.label_frequency(label_id)
        for label_id in range(graph.num_labels)
    }
    return GraphStats(
        name=graph.name,
        num_vertices=n,
        num_edges=graph.num_edges,
        num_labels=graph.num_labels,
        density=graph.density(),
        max_out_degree=max(out_degrees, default=0),
        max_in_degree=max(in_degrees, default=0),
        mean_degree=(sum(totals) / n) if n else 0.0,
        degree_gini=_gini(totals),
        label_counts=label_counts,
    )


def degree_histogram(graph: KnowledgeGraph, direction: str = "total") -> dict[int, int]:
    """Histogram ``degree -> vertex count``.

    ``direction`` is one of ``"out"``, ``"in"``, ``"total"``.
    """
    if direction == "out":
        degrees = (graph.out_degree(v) for v in graph.vertices())
    elif direction == "in":
        degrees = (graph.in_degree(v) for v in graph.vertices())
    elif direction == "total":
        degrees = (graph.degree(v) for v in graph.vertices())
    else:
        raise ValueError(f"unknown direction {direction!r}; use out/in/total")
    return dict(Counter(degrees))


def label_histogram(graph: KnowledgeGraph) -> dict[str, int]:
    """Histogram ``label -> edge count`` sorted by decreasing count."""
    counts = {
        graph.label_name(label_id): graph.label_frequency(label_id)
        for label_id in range(graph.num_labels)
    }
    return dict(sorted(counts.items(), key=lambda item: (-item[1], item[0])))


def _gini(values: list[int]) -> float:
    """Gini coefficient of a degree sequence (0 = uniform, →1 = hub-heavy)."""
    if not values:
        return 0.0
    total = sum(values)
    if total == 0:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    cumulative = 0.0
    for rank, value in enumerate(ordered, start=1):
        cumulative += rank * value
    return (2.0 * cumulative) / (n * total) - (n + 1.0) / n


def powerlaw_exponent_estimate(graph: KnowledgeGraph, minimum_degree: int = 2) -> float:
    """Maximum-likelihood power-law exponent of the total-degree tail.

    Clauset–Shalizi–Newman discrete estimator with fixed ``x_min``.
    Used only to sanity-check the scale-free profile of the YAGO
    substitute (values around 2–3 are typical of real KGs).
    """
    degrees = [graph.degree(v) for v in graph.vertices() if graph.degree(v) >= minimum_degree]
    if len(degrees) < 2:
        return float("nan")
    x_min = float(minimum_degree)
    log_sum = sum(math.log(d / (x_min - 0.5)) for d in degrees)
    if log_sum <= 0:
        return float("inf")
    return 1.0 + len(degrees) / log_sum
