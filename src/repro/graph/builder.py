"""Fluent construction of knowledge graphs with a synchronised schema.

:class:`GraphBuilder` keeps the graph's edge set and the RDFS schema
consistent: typing a vertex adds both the ``rdf:type`` edge *and* the
schema registration, which is what the paper's Figure 2 KG looks like
(schema statements are ordinary labeled edges that also carry special
meaning).  Generators and tests use it so they can never produce a graph
whose schema disagrees with its edges.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.graph.labeled_graph import KnowledgeGraph
from repro.graph.rdf import RDF_TYPE, RDFS_SUBCLASS_OF
from repro.graph.schema import RDFSchema

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Incremental builder producing a :class:`KnowledgeGraph` + schema.

    >>> g = (GraphBuilder("toy")
    ...      .declare_class("Person")
    ...      .typed("alice", "Person")
    ...      .edge("alice", "knows", "bob")
    ...      .build())
    >>> g.has_edge_named("alice", "rdf:type", "Person")
    True
    >>> g.schema.is_instance("alice", "Person")
    True
    """

    def __init__(self, name: str = "kg", materialise_type_edges: bool = True) -> None:
        self._graph = KnowledgeGraph(name=name)
        self._schema = RDFSchema()
        self._graph.schema = self._schema
        #: When True (default), ``rdf:type`` / ``rdfs:subClassOf``
        #: statements are also added as graph edges, as in Figure 2.
        self._materialise = materialise_type_edges

    @property
    def graph(self) -> KnowledgeGraph:
        """The graph under construction (already usable)."""
        return self._graph

    @property
    def schema(self) -> RDFSchema:
        """The schema under construction."""
        return self._schema

    # ------------------------------------------------------------------
    # vertices and plain edges
    # ------------------------------------------------------------------

    def vertex(self, name: Hashable) -> "GraphBuilder":
        """Ensure a vertex exists."""
        self._graph.add_vertex(name)
        return self

    def edge(self, source: Hashable, label: str, target: Hashable) -> "GraphBuilder":
        """Add one labeled edge (duplicates silently ignored)."""
        self._graph.add_edge(source, label, target)
        return self

    def edges(self, triples: Iterable[tuple[Hashable, str, Hashable]]) -> "GraphBuilder":
        """Add many ``(source, label, target)`` triples."""
        for source, label, target in triples:
            self._graph.add_edge(source, label, target)
        return self

    # ------------------------------------------------------------------
    # schema-aware statements
    # ------------------------------------------------------------------

    def declare_class(self, class_name: str) -> "GraphBuilder":
        """Declare an ``rdfs:Class``."""
        self._schema.add_class(class_name)
        if self._materialise:
            self._graph.add_vertex(class_name)
        return self

    def subclass(self, subclass: str, superclass: str) -> "GraphBuilder":
        """Record and (optionally) materialise ``rdfs:subClassOf``."""
        self._schema.add_subclass(subclass, superclass)
        if self._materialise:
            self._graph.add_edge(subclass, RDFS_SUBCLASS_OF, superclass)
        return self

    def typed(self, instance: Hashable, class_name: str) -> "GraphBuilder":
        """Record and (optionally) materialise ``instance rdf:type class``."""
        self._schema.add_instance(instance, class_name)
        if self._materialise:
            self._graph.add_edge(instance, RDF_TYPE, class_name)
        return self

    def domain(self, prop: str, class_name: str) -> "GraphBuilder":
        """Record ``prop rdfs:domain class_name`` in the schema."""
        self._schema.set_domain(prop, class_name)
        return self

    def range(self, prop: str, class_name: str) -> "GraphBuilder":
        """Record ``prop rdfs:range class_name`` in the schema."""
        self._schema.set_range(prop, class_name)
        return self

    # ------------------------------------------------------------------

    def build(self) -> KnowledgeGraph:
        """Return the finished graph (schema attached)."""
        return self._graph
