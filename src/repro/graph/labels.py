"""Edge-label universe and bitmask label sets.

The paper manipulates *label sets* constantly: label constraints ``L ⊆ 𝕃``
(Definition 2.4), path label sets ``L(p)``, and the minimal sufficient
path label sets stored in CMS collections (Definition 2.3).  Subset tests
between label sets dominate both query processing and index construction,
so labels are interned to bit positions and label sets are plain Python
ints used as bitmasks:

* ``A ⊆ B``  ⇔  ``A & ~B == 0``  ⇔  ``A | B == B``
* ``A ∪ {l}``  ⇔  ``A | (1 << l)``

Masks are arbitrary-precision, so the universe is not limited to 64
labels (knowledge graphs routinely have a few hundred predicates).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.exceptions import LabelNotFoundError

__all__ = ["LabelUniverse", "mask_is_subset", "iter_mask_bits", "popcount"]


def mask_is_subset(a: int, b: int) -> bool:
    """True iff label set ``a`` is a subset of label set ``b``."""
    return a & ~b == 0


def popcount(mask: int) -> int:
    """Number of labels in the set ``mask``."""
    return mask.bit_count()


def iter_mask_bits(mask: int) -> Iterator[int]:
    """Yield the label ids (bit positions) present in ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class LabelUniverse:
    """Bidirectional mapping between label names and bit positions.

    A universe is owned by one :class:`~repro.graph.labeled_graph.KnowledgeGraph`
    and grows monotonically: labels are interned on first use and never
    removed, so bit positions are stable for the graph's lifetime.
    """

    __slots__ = ("_name_to_id", "_names")

    def __init__(self) -> None:
        self._name_to_id: dict[str, int] = {}
        self._names: list[str] = []

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __contains__(self, label: str) -> bool:
        return label in self._name_to_id

    def __repr__(self) -> str:
        return f"LabelUniverse({len(self)} labels)"

    def copy(self) -> "LabelUniverse":
        """An independent universe with the same name ↔ id assignment.

        The copy-on-write half of epoch-swapped serving: a mutated graph
        copy interns new labels into its own universe, so the snapshot
        still serving the previous epoch never observes them.
        """
        clone = LabelUniverse()
        clone._name_to_id = dict(self._name_to_id)
        clone._names = list(self._names)
        return clone

    def intern(self, label: str) -> int:
        """Return the id of ``label``, assigning the next free bit if new."""
        existing = self._name_to_id.get(label)
        if existing is not None:
            return existing
        new_id = len(self._names)
        self._name_to_id[label] = new_id
        self._names.append(label)
        return new_id

    def id_of(self, label: str) -> int:
        """Id of an existing label; raises :class:`LabelNotFoundError`."""
        try:
            return self._name_to_id[label]
        except KeyError:
            raise LabelNotFoundError(label) from None

    def name_of(self, label_id: int) -> str:
        """Name of an existing label id; raises :class:`LabelNotFoundError`."""
        if 0 <= label_id < len(self._names):
            return self._names[label_id]
        raise LabelNotFoundError(label_id)

    def names(self) -> tuple[str, ...]:
        """All label names in id order."""
        return tuple(self._names)

    def mask_of(self, labels: Iterable[str]) -> int:
        """Bitmask of a collection of label *names* (must all exist)."""
        mask = 0
        for label in labels:
            mask |= 1 << self.id_of(label)
        return mask

    def mask_of_ids(self, label_ids: Iterable[int]) -> int:
        """Bitmask of a collection of label *ids* (not range-checked)."""
        mask = 0
        for label_id in label_ids:
            mask |= 1 << label_id
        return mask

    def full_mask(self) -> int:
        """Mask containing every label currently in the universe."""
        return (1 << len(self._names)) - 1

    def labels_in_mask(self, mask: int) -> tuple[str, ...]:
        """Decode a mask back to label names (ascending id order)."""
        return tuple(self.name_of(bit) for bit in iter_mask_bits(mask))
