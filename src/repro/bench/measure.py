"""Measurement primitives shared by all experiments."""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.base import LSCRAlgorithm
from repro.core.result import ResultAggregate
from repro.workloads.generator import WorkloadQuery

__all__ = ["run_query_group", "MeasurementError"]


class MeasurementError(AssertionError):
    """An algorithm disagreed with the workload's expected answer.

    All algorithms are exact, so a disagreement is a bug, never noise —
    experiments abort rather than report numbers from a wrong answer.
    """


def run_query_group(
    algorithms: Iterable[LSCRAlgorithm],
    queries: list[WorkloadQuery],
    verify: bool = True,
) -> dict[str, ResultAggregate]:
    """Run every algorithm over every query; aggregate per algorithm.

    With ``verify`` (default) each answer is checked against the
    workload's expected truth value (established by UIS at generation
    time) — this makes every benchmark run double as a correctness test.
    """
    aggregates: dict[str, ResultAggregate] = {}
    for algorithm in algorithms:
        aggregate = aggregates.setdefault(
            algorithm.name, ResultAggregate(algorithm=algorithm.name)
        )
        for item in queries:
            result = algorithm.answer(item.query)
            if verify and result.answer != item.expected:
                raise MeasurementError(
                    f"{algorithm.name} answered {result.answer} but "
                    f"{item.expected} was expected for {item.query.describe()}"
                )
            aggregate.add(result)
    return aggregates
