"""Benchmark harness: one runner per table/figure of the paper."""

from repro.bench.experiments import (
    BENCH,
    SMOKE,
    BenchScale,
    ExperimentResult,
    constraint_figure,
    fig5_tree_index,
    fig15_yago,
    table2_indexing,
)
from repro.bench.harness import EXPERIMENTS, render_results, run_all, run_experiment
from repro.bench.measure import MeasurementError, run_query_group
from repro.bench.reporting import format_number, format_table, render_experiment

__all__ = [
    "BENCH",
    "BenchScale",
    "EXPERIMENTS",
    "ExperimentResult",
    "MeasurementError",
    "SMOKE",
    "constraint_figure",
    "fig5_tree_index",
    "fig15_yago",
    "format_number",
    "format_table",
    "render_experiment",
    "render_results",
    "run_all",
    "run_experiment",
    "run_query_group",
    "table2_indexing",
]
