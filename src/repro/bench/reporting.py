"""Plain-text rendering of experiment results.

The harness prints each table/figure the way the paper lays it out: a
header, one row per dataset / x-value, one column per algorithm or
measure.  Numbers are rendered compactly (3 significant digits, SI-style
thousands separators for counts).
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_number", "render_experiment"]


def format_number(value: object) -> str:
    """Human-compact rendering of one cell."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    rendered_rows = [[format_number(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_experiment(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: Sequence[str] = (),
) -> str:
    """Title + table + footnotes, ready to print."""
    parts = [f"== {title} ==", format_table(headers, rows)]
    for note in notes:
        parts.append(f"  note: {note}")
    return "\n".join(parts)
