"""The experiment registry and top-level runner.

``python -m repro.bench`` runs every experiment at BENCH scale and
prints the paper-shaped tables; ``run_experiment`` exposes single
experiments to the pytest benchmarks and the test suite (at SMOKE
scale).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.bench.experiments import (
    BENCH,
    BenchScale,
    ExperimentResult,
    ablation_ins,
    constraint_figure,
    fig5_tree_index,
    fig15_yago,
    table2_indexing,
)
from repro.bench.reporting import render_experiment
from repro.exceptions import BenchmarkError

__all__ = ["EXPERIMENTS", "run_experiment", "run_all", "render_results"]

#: Experiment id → runner. Each runner takes ``(scale, seed)``.
EXPERIMENTS: dict[str, Callable[[BenchScale, int], list[ExperimentResult]]] = {
    "table2": table2_indexing,
    "fig5": fig5_tree_index,
    "fig10": lambda scale, seed: constraint_figure("fig10", scale, seed),
    "fig11": lambda scale, seed: constraint_figure("fig11", scale, seed),
    "fig12": lambda scale, seed: constraint_figure("fig12", scale, seed),
    "fig13": lambda scale, seed: constraint_figure("fig13", scale, seed),
    "fig14": lambda scale, seed: constraint_figure("fig14", scale, seed),
    "fig15": fig15_yago,
    # Extension beyond the paper: INS mechanism ablation.
    "ablation": ablation_ins,
}


def run_experiment(
    name: str,
    scale: BenchScale = BENCH,
    seed: int = 0,
) -> list[ExperimentResult]:
    """Run one experiment by id ('table2', 'fig5', 'fig10' .. 'fig15')."""
    runner = EXPERIMENTS.get(name)
    if runner is None:
        raise BenchmarkError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        )
    return runner(scale, seed)


def run_all(scale: BenchScale = BENCH, seed: int = 0) -> list[ExperimentResult]:
    """Run every experiment, in paper order."""
    results: list[ExperimentResult] = []
    for name in EXPERIMENTS:
        results.extend(run_experiment(name, scale, seed))
    return results


def render_results(results: list[ExperimentResult]) -> str:
    """Render experiment results as printable text blocks."""
    blocks = [
        render_experiment(r.title, r.headers, r.rows, r.notes) for r in results
    ]
    return "\n\n".join(blocks)
