"""CLI entry point: ``python -m repro.bench [experiment ...]``.

Runs the requested experiments (default: all) at BENCH scale and prints
each table/figure.  ``--smoke`` switches to the seconds-scale preset.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import BENCH, SMOKE
from repro.bench.harness import EXPERIMENTS, render_results, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="experiment",
        help=f"experiment ids (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument("--smoke", action="store_true", help="tiny sizes (CI)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    scale = SMOKE if args.smoke else BENCH
    names = args.experiments or list(EXPERIMENTS)
    for name in names:
        started = time.perf_counter()
        results = run_experiment(name, scale, args.seed)
        elapsed = time.perf_counter() - started
        print(render_results(results))
        print(f"[{name} completed in {elapsed:.1f}s at scale '{scale.name}']")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
