"""The experiment definitions — one runner per paper table/figure.

Every runner returns a list of :class:`ExperimentResult` (a figure with
four panels yields four results) and is parameterised by a
:class:`BenchScale` preset:

* ``SMOKE`` — seconds-scale sizes for CI and the test suite;
* ``BENCH`` — the default reproduction scale (minutes overall), whose
  output is recorded in EXPERIMENTS.md.

Scales are downscaled relative to the paper (DESIGN.md §4): all claims
checked are *shapes* — orderings, ratios, growth trends — not absolute
milliseconds.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.measure import run_query_group
from repro.core.ins import INS
from repro.core.result import ResultAggregate
from repro.core.uis import UIS
from repro.core.uis_star import UISStar
from repro.datasets.lubm import constraint as lubm_constraint
from repro.datasets.lubm import generate_dataset
from repro.datasets.synthetic import random_labeled_graph
from repro.datasets.yago import YagoConfig, generate_yago_like
from repro.exceptions import IndexingBudgetExceeded
from repro.graph.labeled_graph import KnowledgeGraph
from repro.index.local_index import LocalIndex, build_local_index
from repro.index.spanning_tree import build_sampling_tree_index
from repro.index.storage import save_local_index
from repro.index.traditional import build_traditional_index
from repro.workloads.constraints import random_constraint_with_magnitude
from repro.workloads.generator import Workload, generate_workload

__all__ = [
    "BenchScale",
    "ExperimentResult",
    "SMOKE",
    "BENCH",
    "table2_indexing",
    "fig5_tree_index",
    "constraint_figure",
    "fig15_yago",
    "FIGURE_CONSTRAINTS",
]


@dataclass(frozen=True)
class ExperimentResult:
    """One printable table of one experiment."""

    experiment_id: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]
    notes: tuple[str, ...] = ()


@dataclass(frozen=True)
class BenchScale:
    """Size preset for the whole experiment suite."""

    name: str
    #: LUBM-like datasets (keys of SCALED_DATASETS) for Figures 10–14.
    datasets: tuple[str, ...] = ("D1", "D2", "D3", "D4", "D5")
    #: Datasets for the Table 2 indexing comparison.
    indexing_datasets: tuple[str, ...] = ("D0", "D1", "D2", "D3", "D4", "D5")
    #: Queries per (true / false) group; the paper uses 1000 each.
    queries_per_group: int = 12
    #: Wall-clock budget for the traditional [19] comparator (the
    #: paper's analogue is eight hours).
    traditional_budget_seconds: float = 20.0
    #: Figure 5(a): density sweep at fixed |V|.
    fig5_densities: tuple[float, ...] = (2.0, 2.75, 3.5, 4.25, 5.0)
    fig5_fixed_vertices: int = 250
    #: Figure 5(b): |V| sweep at fixed density.
    fig5_vertices: tuple[int, ...] = (100, 200, 400, 600, 800)
    fig5_fixed_density: float = 1.5
    fig5_num_labels: int = 4
    #: Figure 15: YAGO-like scale and |V(S,G)| magnitudes (paper:
    #: 4M entities, magnitudes 10¹..10⁵).
    yago_entities: int = 1500
    yago_magnitudes: tuple[int, ...] = (10, 30, 100, 300)


SMOKE = BenchScale(
    name="smoke",
    datasets=("D0", "D1"),
    indexing_datasets=("D0",),
    queries_per_group=3,
    traditional_budget_seconds=5.0,
    fig5_densities=(2.0, 3.0),
    fig5_fixed_vertices=60,
    fig5_vertices=(40, 80),
    yago_entities=250,
    yago_magnitudes=(5, 15),
)

BENCH = BenchScale(name="bench")

#: Figure number → Table 3 constraint reproduced by it.
FIGURE_CONSTRAINTS: dict[str, str] = {
    "fig10": "S1",
    "fig11": "S2",
    "fig12": "S3",
    "fig13": "S4",
    "fig14": "S5",
}


def bench_landmark_count(num_vertices: int) -> int:
    """Landmark count used by the query experiments: ``|V| / 48``.

    The paper's ``k = log|V|·√|V|`` yields ~90-vertex regions at its
    multi-million-vertex scale; applied to thousand-vertex graphs it
    would give 3-vertex regions and a useless index.  Holding the
    *region size* near the paper's regime (DESIGN.md §4) preserves the
    behaviour the experiments measure.
    """
    return max(4, num_vertices // 48)


# ----------------------------------------------------------------------
# Table 2 — indexing time and space, local index vs traditional [19]
# ----------------------------------------------------------------------


def table2_indexing(scale: BenchScale = BENCH, seed: int = 0) -> list[ExperimentResult]:
    """Reproduce Table 2: per-dataset indexing time/size, both indexes."""
    rows: list[tuple[object, ...]] = []
    for dataset_name in scale.indexing_datasets:
        graph = generate_dataset(dataset_name, rng=seed)
        index = build_local_index(graph, rng=seed + 1)
        local_size = _on_disk_size(index)
        try:
            traditional = build_traditional_index(
                graph, budget_seconds=scale.traditional_budget_seconds
            )
            trad_time: object = traditional.build_seconds
            trad_size: object = traditional.estimated_size_bytes() / 1e6
        except IndexingBudgetExceeded:
            trad_time = "-"
            trad_size = "-"
        rows.append(
            (
                dataset_name,
                graph.num_vertices,
                graph.num_edges,
                index.build_seconds,
                local_size / 1e6,
                trad_time,
                trad_size,
            )
        )
    return [
        ExperimentResult(
            experiment_id="table2",
            title="Table 2: indexing consumption (local index vs traditional [19])",
            headers=(
                "Dataset",
                "Vertices",
                "Edges",
                "Local IT(s)",
                "Local IS(MB)",
                "Trad IT(s)",
                "Trad IS(MB)",
            ),
            rows=tuple(rows),
            notes=(
                f"traditional indexing budget: {scale.traditional_budget_seconds}s "
                "('-' = exceeded, as the paper's 8h cut-off)",
                "sizes are real on-disk bytes of the serialised index",
            ),
        )
    ]


def _on_disk_size(index: LocalIndex) -> int:
    with tempfile.TemporaryDirectory() as tmp:
        return save_local_index(index, Path(tmp) / "index.json")


# ----------------------------------------------------------------------
# Figure 5 — tree-based LCR indexing does not scale
# ----------------------------------------------------------------------


def fig5_tree_index(scale: BenchScale = BENCH, seed: int = 0) -> list[ExperimentResult]:
    """Reproduce Figure 5(a)/(b): sampling-tree indexing time curves."""
    density_rows: list[tuple[object, ...]] = []
    for density in scale.fig5_densities:
        graph = random_labeled_graph(
            scale.fig5_fixed_vertices, density, scale.fig5_num_labels, rng=seed
        )
        index = build_sampling_tree_index(graph, rng=seed + 1)
        density_rows.append((density, graph.num_edges, index.build_seconds))

    vertex_rows: list[tuple[object, ...]] = []
    for num_vertices in scale.fig5_vertices:
        graph = random_labeled_graph(
            num_vertices, scale.fig5_fixed_density, scale.fig5_num_labels, rng=seed
        )
        index = build_sampling_tree_index(graph, rng=seed + 1)
        vertex_rows.append((num_vertices, graph.num_edges, index.build_seconds))

    return [
        ExperimentResult(
            experiment_id="fig5a",
            title=(
                "Figure 5(a): tree-index time vs density "
                f"(|V|={scale.fig5_fixed_vertices})"
            ),
            headers=("|E|/|V|", "Edges", "Indexing time(s)"),
            rows=tuple(density_rows),
        ),
        ExperimentResult(
            experiment_id="fig5b",
            title=(
                "Figure 5(b): tree-index time vs |V| "
                f"(D={scale.fig5_fixed_density})"
            ),
            headers=("|V|", "Edges", "Indexing time(s)"),
            rows=tuple(vertex_rows),
        ),
    ]


# ----------------------------------------------------------------------
# Figures 10-14 — S1..S5 on D1..D5
# ----------------------------------------------------------------------


@dataclass
class _Cell:
    """Measurements of one dataset row in a constraint figure."""

    dataset: str
    true_aggregates: dict[str, ResultAggregate] = field(default_factory=dict)
    false_aggregates: dict[str, ResultAggregate] = field(default_factory=dict)
    true_count: int = 0
    false_count: int = 0


def constraint_figure(
    figure: str,
    scale: BenchScale = BENCH,
    seed: int = 0,
) -> list[ExperimentResult]:
    """Reproduce one of Figures 10–14 (figure ∈ fig10..fig14).

    Panels: (a) average time, true queries; (b) average time, false
    queries; (c) average passed vertices, true; (d) same, false.
    """
    constraint_name = FIGURE_CONSTRAINTS[figure]
    constraint = lubm_constraint(constraint_name)
    cells: list[_Cell] = []
    for dataset_name in scale.datasets:
        graph = generate_dataset(dataset_name, rng=seed)
        index = build_local_index(
            graph, k=bench_landmark_count(graph.num_vertices), rng=seed + 1
        )
        workload = generate_workload(
            graph,
            constraint,
            num_true=scale.queries_per_group,
            num_false=scale.queries_per_group,
            rng=seed + 2,
            max_attempts=3000,
        )
        algorithms = [
            UIS(graph),
            UISStar(graph, rng=random.Random(seed + 3)),
            INS(graph, index, rng=random.Random(seed + 4)),
        ]
        cell = _Cell(dataset=dataset_name)
        cell.true_count = len(workload.true_queries)
        cell.false_count = len(workload.false_queries)
        if workload.true_queries:
            cell.true_aggregates = run_query_group(algorithms, workload.true_queries)
        if workload.false_queries:
            cell.false_aggregates = run_query_group(algorithms, workload.false_queries)
        cells.append(cell)

    notes = (
        f"substructure constraint {constraint_name} (Table 3)",
        f"{scale.queries_per_group} queries requested per group "
        "(paper: 1000; cells report the count actually generated)",
    )
    return [
        _panel(figure, "a", "avg time (ms), true queries", cells, "true", "ms", notes),
        _panel(figure, "b", "avg time (ms), false queries", cells, "false", "ms", notes),
        _panel(figure, "c", "avg passed vertices, true queries", cells, "true", "passed", notes),
        _panel(figure, "d", "avg passed vertices, false queries", cells, "false", "passed", notes),
    ]


def _panel(
    figure: str,
    panel: str,
    subtitle: str,
    cells: list[_Cell],
    group: str,
    metric: str,
    notes: tuple[str, ...],
) -> ExperimentResult:
    rows: list[tuple[object, ...]] = []
    for cell in cells:
        aggregates = cell.true_aggregates if group == "true" else cell.false_aggregates
        count = cell.true_count if group == "true" else cell.false_count
        row: list[object] = [cell.dataset, count]
        for name in ("UIS", "UIS*", "INS"):
            aggregate = aggregates.get(name)
            if aggregate is None or aggregate.count == 0:
                row.append(None)
            elif metric == "ms":
                row.append(aggregate.mean_milliseconds)
            else:
                row.append(aggregate.mean_passed_vertices)
        rows.append(tuple(row))
    figure_number = figure.removeprefix("fig")
    return ExperimentResult(
        experiment_id=f"{figure}{panel}",
        title=f"Figure {figure_number}({panel}): {subtitle}",
        headers=("Dataset", "#q", "UIS", "UIS*", "INS"),
        rows=tuple(rows),
        notes=notes,
    )


# ----------------------------------------------------------------------
# Figure 15 — YAGO-like, random constraints by |V(S,G)| magnitude
# ----------------------------------------------------------------------


def fig15_yago(scale: BenchScale = BENCH, seed: int = 0) -> list[ExperimentResult]:
    """Reproduce Figure 15: random constraints on the YAGO substitute."""
    graph = generate_yago_like(
        YagoConfig(num_entities=scale.yago_entities), rng=seed, name="yago-like"
    )
    index = build_local_index(
        graph, k=bench_landmark_count(graph.num_vertices), rng=seed + 1
    )
    cells: list[_Cell] = []
    for magnitude in scale.yago_magnitudes:
        generated = random_constraint_with_magnitude(
            graph, magnitude, rng=seed + magnitude
        )
        workload = generate_workload(
            graph,
            generated.constraint,
            num_true=scale.queries_per_group,
            num_false=scale.queries_per_group,
            rng=seed + 2 + magnitude,
            max_attempts=3000,
        )
        algorithms = [
            UIS(graph),
            UISStar(graph, rng=random.Random(seed + 3)),
            INS(graph, index, rng=random.Random(seed + 4)),
        ]
        cell = _Cell(dataset=f"m={magnitude} (|V(S,G)|={generated.cardinality})")
        cell.true_count = len(workload.true_queries)
        cell.false_count = len(workload.false_queries)
        if workload.true_queries:
            cell.true_aggregates = run_query_group(algorithms, workload.true_queries)
        if workload.false_queries:
            cell.false_aggregates = run_query_group(algorithms, workload.false_queries)
        cells.append(cell)

    notes = (
        f"YAGO-like graph: {graph.num_vertices} vertices, {graph.num_edges} edges "
        "(substitute for the 4M-vertex YAGO; DESIGN.md §4)",
        "magnitudes scaled from the paper's 10^1..10^5",
    )
    return [
        _panel("fig15", "a", "avg time (ms), true queries", cells, "true", "ms", notes),
        _panel("fig15", "b", "avg time (ms), false queries", cells, "false", "ms", notes),
        _panel("fig15", "c", "avg passed vertices, true queries", cells, "true", "passed", notes),
        _panel("fig15", "d", "avg passed vertices, false queries", cells, "false", "passed", notes),
    ]


# ----------------------------------------------------------------------
# Ablation (extension beyond the paper): what each INS mechanism buys
# ----------------------------------------------------------------------


def ablation_ins(scale: BenchScale = BENCH, seed: int = 0) -> list[ExperimentResult]:
    """Isolate INS's two mechanisms: index pruning and informed order.

    Four variants of INS run the S1 workload on the largest configured
    dataset: full, without Check/Cut/Push ("noprune"), without the
    informed priority components ("noprio"), and with neither — the last
    being essentially UIS* with a FIFO queue.  Not a paper artifact, but
    it substantiates Section 5's design rationale.
    """
    dataset_name = scale.datasets[-1]
    graph = generate_dataset(dataset_name, rng=seed)
    index = build_local_index(
        graph, k=bench_landmark_count(graph.num_vertices), rng=seed + 1
    )
    workload = generate_workload(
        graph,
        lubm_constraint("S1"),
        num_true=scale.queries_per_group,
        num_false=scale.queries_per_group,
        rng=seed + 2,
        max_attempts=3000,
    )
    variants = [
        INS(graph, index, rng=random.Random(seed + 3)),
        INS(graph, index, rng=random.Random(seed + 3), use_index_pruning=False),
        INS(graph, index, rng=random.Random(seed + 3), use_priorities=False),
        INS(
            graph,
            index,
            rng=random.Random(seed + 3),
            use_index_pruning=False,
            use_priorities=False,
        ),
    ]
    rows: list[tuple[object, ...]] = []
    for group_name, queries in (
        ("true", workload.true_queries),
        ("false", workload.false_queries),
    ):
        if not queries:
            continue
        aggregates = run_query_group(variants, queries)
        for variant in variants:
            aggregate = aggregates[variant.name]
            rows.append(
                (
                    group_name,
                    variant.name,
                    aggregate.mean_milliseconds,
                    aggregate.mean_passed_vertices,
                )
            )
    return [
        ExperimentResult(
            experiment_id="ablation",
            title=f"Ablation (extension): INS mechanisms on {dataset_name} / S1",
            headers=("Group", "Variant", "avg ms", "avg passed vertices"),
            rows=tuple(rows),
            notes=(
                "noprune = Check/Cut/Push disabled; noprio = informed key "
                "components disabled (T-before-F kept: required for "
                "correctness)",
            ),
        )
    ]
