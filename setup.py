"""Legacy setuptools shim.

The environment this reproduction targets may lack the ``wheel`` package
(and network access to fetch it), in which case ``pip install -e .``
cannot build a PEP 660 editable wheel.  ``python setup.py develop`` works
with bare setuptools; all real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
